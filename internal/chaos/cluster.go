package chaos

// Multi-worker cluster campaign: a coordinator sharding the full Table 1
// sweep across three workers while a seeded fault driver kills workers
// (503s), restarts them (fresh process state — the trace cache is gone,
// the durable store survives), and partitions one (requests hang until
// the batch deadline reaps them). The contract under all of that:
//
//   - the merged sweep report is byte-identical to an undisturbed
//     single-process run, with no degraded ("n/a") cells;
//   - every shed submission is an immediate 429 with Retry-After;
//   - the dispatch accounting identity holds on /metrics at quiescence:
//     dispatched == completed + failed + hedge_wasted, per worker;
//   - /healthz reports the coordinator role and peer count throughout;
//   - all goroutines settle once everything is closed.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/store"
)

// ClusterOptions configures the campaign.
type ClusterOptions struct {
	// Seed makes the fault schedule's choices reproducible.
	Seed int64
	// Scale is the workload scale for every cell; <= 0 means 50.
	Scale int
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// ClusterSummary is the campaign outcome.
type ClusterSummary struct {
	Workers     int      `json:"workers"`
	Cells       int      `json:"cells"`
	Kills       int      `json:"kills"`
	Restarts    int      `json:"restarts"`
	Partitions  int      `json:"partitions"`
	Shed        int      `json:"shed"`
	Dispatched  int64    `json:"dispatched"`
	Completed   int64    `json:"completed"`
	Failed      int64    `json:"failed"`
	HedgeWasted int64    `json:"hedge_wasted"`
	Hedges      int64    `json:"hedges"`
	Fallbacks   int64    `json:"fallbacks"`
	Violations  []string `json:"violations,omitempty"`
}

// flakyWorker wraps one worker's handler with a fault mode. "Kill" answers
// 503 (the process is gone; connections refuse fast); "partition" hangs
// every request until the client's deadline reaps it (the network ate the
// packets); "restart" swaps in a brand-new cluster.Worker — in-memory
// trace cache lost, durable store kept — and heals the mode.
type flakyWorker struct {
	st      *store.Store
	mode    atomic.Int32 // 0 ok; 1 killed; 2 partitioned
	handler atomic.Value // http.Handler
}

func newFlakyWorker(st *store.Store) *flakyWorker {
	f := &flakyWorker{st: st}
	f.restart()
	return f
}

func (f *flakyWorker) restart() {
	w := cluster.NewWorker(cluster.WorkerOptions{Store: f.st})
	f.handler.Store(w.Handler())
	f.mode.Store(0)
}

func (f *flakyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch f.mode.Load() {
	case 1:
		http.Error(w, "chaos: worker killed", http.StatusServiceUnavailable)
	case 2:
		// Drain the body first: the server only watches for client
		// disconnect (and cancels r.Context) once the request body is
		// consumed, and a partition that outlives Close would wedge the
		// test's shutdown.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	default:
		f.handler.Load().(http.Handler).ServeHTTP(w, r)
	}
}

// RunCluster executes the campaign. The error is non-nil iff any invariant
// was violated (the violations are also in the Summary).
func RunCluster(opt ClusterOptions) (*ClusterSummary, error) {
	if opt.Scale <= 0 {
		opt.Scale = 50
	}
	if opt.Log == nil {
		opt.Log = func(string, ...any) {}
	}
	dir, err := os.MkdirTemp("", "ddserve-cluster-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	const nWorkers = 3
	sum := &ClusterSummary{Workers: nWorkers}
	baseline := runtime.NumGoroutine()

	// Undisturbed single-process baseline: same grid, same scale, no
	// cluster anywhere near it.
	opt.Log("cluster: baseline single-process sweep (scale %d)", opt.Scale)
	baselineReport, v := clusterBaseline(opt.Scale)
	if v != "" {
		sum.Violations = append(sum.Violations, "baseline: "+v)
		return sum, fmt.Errorf("chaos: cluster baseline failed: %s", v)
	}

	// Three workers behind fault-injecting wrappers, each with its own
	// durable store (a restarted worker resumes from disk, like a real
	// redeploy would).
	flakies := make([]*flakyWorker, nWorkers)
	urls := make([]string, nWorkers)
	workerTS := make([]*httptest.Server, nWorkers)
	for i := range flakies {
		st, serr := store.Open(filepath.Join(dir, fmt.Sprintf("worker-%d", i)))
		if serr != nil {
			return sum, serr
		}
		flakies[i] = newFlakyWorker(st)
		workerTS[i] = httptest.NewServer(flakies[i])
		urls[i] = workerTS[i].URL
	}
	defer func() {
		for _, ts := range workerTS {
			ts.Close()
		}
	}()

	hc := &http.Client{Timeout: 15 * time.Second}
	coord, err := cluster.New(urls, cluster.Options{
		Seed:          opt.Seed,
		BatchSize:     4,
		Linger:        2 * time.Millisecond,
		BatchTimeout:  2 * time.Second,
		HedgeAfter:    150 * time.Millisecond,
		Retries:       3,
		ProbeEvery:    100 * time.Millisecond,
		FailThreshold: 2,
		QuarantineFor: 300 * time.Millisecond,
		Client:        hc,
	})
	if err != nil {
		return sum, err
	}
	srv := server.New(server.Options{
		Workers:         nWorkers,
		QueueDepth:      64,
		Scale:           opt.Scale,
		DefaultDeadline: 60 * time.Second,
		Coordinator:     coord,
	})
	coord.Start()
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	c := newClient(ts.URL)
	defer c.c.CloseIdleConnections()
	defer hc.CloseIdleConnections()

	// Submit the full Table 1 grid (the SweepSpec zero value), then
	// immediately burst single-job submissions past the queue to force
	// shedding while the sweep occupies the queue.
	code, body, _, err := c.post("/sweeps", server.SweepSpec{})
	if err != nil || code != http.StatusAccepted {
		sum.Violations = append(sum.Violations, fmt.Sprintf("sweep submit: code %d err %v", code, err))
		return sum, fmt.Errorf("chaos: cluster sweep submit failed")
	}
	var sweep server.Sweep
	if err := json.Unmarshal(body, &sweep); err != nil {
		return sum, err
	}
	sum.Cells = len(sweep.JobIDs)

	var burstIDs []string
	brng := rand.New(rand.NewSource(opt.Seed + 101))
	for j := 0; j < 64; j++ {
		code, body, hdr, err := c.post("/jobs", randomSpec(brng))
		switch {
		case err != nil:
			sum.Violations = append(sum.Violations, "burst submit: "+err.Error())
		case code == http.StatusAccepted:
			var job server.Job
			if json.Unmarshal(body, &job) == nil && job.ID != "" {
				burstIDs = append(burstIDs, job.ID)
			}
		case code == http.StatusTooManyRequests:
			if hdr.Get("Retry-After") == "" {
				sum.Violations = append(sum.Violations, "429 without Retry-After")
			}
			sum.Shed++
		default:
			sum.Violations = append(sum.Violations, fmt.Sprintf("burst submission got %d: %s", code, body))
		}
	}
	if sum.Shed == 0 {
		sum.Violations = append(sum.Violations, "burst past a sweep-filled queue was never shed")
	}

	// Fault driver: seeded kills, restarts, partitions, heals — at random
	// workers on a 100-300ms cadence until the sweep completes. Local
	// fallback makes even an all-workers-dead window survivable.
	stop := make(chan struct{})
	var driver sync.WaitGroup
	driver.Add(1)
	go func() {
		defer driver.Done()
		frng := rand.New(rand.NewSource(opt.Seed + 7))
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(100+frng.Intn(200)) * time.Millisecond):
			}
			i := frng.Intn(nWorkers)
			switch frng.Intn(4) {
			case 0:
				flakies[i].mode.Store(1)
				sum.Kills++
				opt.Log("cluster: fault: kill w%d", i)
			case 1:
				flakies[i].restart()
				sum.Restarts++
				opt.Log("cluster: fault: restart w%d", i)
			case 2:
				flakies[i].mode.Store(2)
				sum.Partitions++
				opt.Log("cluster: fault: partition w%d", i)
			case 3:
				flakies[i].mode.Store(0)
				opt.Log("cluster: fault: heal w%d", i)
			}
		}
	}()

	// The sweep must complete despite the faults.
	var report string
	deadline := time.Now().Add(4 * time.Minute)
	for {
		var doc struct {
			Complete bool   `json:"complete"`
			Report   string `json:"report"`
		}
		if _, err := c.get("/sweeps/"+sweep.ID, &doc); err != nil {
			sum.Violations = append(sum.Violations, "sweep poll: "+err.Error())
			break
		}
		if doc.Complete {
			report = doc.Report
			break
		}
		if time.Now().After(deadline) {
			sum.Violations = append(sum.Violations, "sweep never completed under chaos")
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	driver.Wait()
	for _, f := range flakies {
		f.mode.Store(0) // heal for the remaining burst jobs
	}

	// Every admitted burst job must still reach a terminal state.
	jobDeadline := time.Now().Add(2 * time.Minute)
	for _, id := range burstIDs {
		for {
			var job server.Job
			code, err := c.get("/jobs/"+id, &job)
			if err != nil || code != http.StatusOK {
				sum.Violations = append(sum.Violations, fmt.Sprintf("get %s: code %d err %v", id, code, err))
				break
			}
			if job.State.Terminal() {
				break
			}
			if time.Now().After(jobDeadline) {
				sum.Violations = append(sum.Violations, id+": never reached a terminal state")
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Byte-identity against the undisturbed run, and no degraded cells.
	if report != baselineReport {
		sum.Violations = append(sum.Violations, fmt.Sprintf(
			"cluster report diverged from single-process run:\n--- cluster ---\n%s\n--- single-process ---\n%s",
			report, baselineReport))
	}
	if strings.Contains(report, "n/a") {
		sum.Violations = append(sum.Violations, "cluster sweep has degraded cells:\n"+report)
	}

	// The health document must carry the cluster role end-to-end.
	var h server.Health
	if code, err := c.get("/healthz", &h); err != nil || code != http.StatusOK {
		sum.Violations = append(sum.Violations, fmt.Sprintf("healthz: code %d err %v", code, err))
	} else {
		if h.Role != "coordinator" || h.Peers != nWorkers {
			sum.Violations = append(sum.Violations, fmt.Sprintf(
				"healthz role=%q peers=%d, want coordinator/%d", h.Role, h.Peers, nWorkers))
		}
		if len(h.Cluster) != nWorkers {
			sum.Violations = append(sum.Violations, fmt.Sprintf(
				"healthz cluster rows: %d, want %d", len(h.Cluster), nWorkers))
		}
	}

	// Drain, then close the coordinator: Close waits out every in-flight
	// send, so the accounting identity must hold exactly on the next
	// /metrics scrape.
	drainCtx, cancel := contextWithTimeout(60 * time.Second)
	derr := srv.Drain(drainCtx)
	cancel()
	if derr != nil {
		sum.Violations = append(sum.Violations, "drain: "+derr.Error())
	}
	coord.Close()
	sum.Violations = append(sum.Violations, checkClusterIdentity(c, nWorkers, sum)...)

	ts.Close()
	c.c.CloseIdleConnections()
	hc.CloseIdleConnections()
	for _, wts := range workerTS {
		wts.Close()
	}

	// Goroutine settle: coordinator batchers, probe loop, hedge drains,
	// worker pools — all gone.
	settled := false
	for settle := time.Now().Add(15 * time.Second); time.Now().Before(settle); {
		if runtime.NumGoroutine() <= baseline+4 {
			settled = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !settled {
		sum.Violations = append(sum.Violations, fmt.Sprintf(
			"goroutine leak after shutdown: %d running, baseline %d", runtime.NumGoroutine(), baseline))
	}

	if len(sum.Violations) > 0 {
		return sum, fmt.Errorf("chaos: cluster campaign: %d violation(s); first: %s",
			len(sum.Violations), sum.Violations[0])
	}
	return sum, nil
}

// clusterBaseline runs the default sweep grid on a plain single-process
// server and returns its rendered report.
func clusterBaseline(scale int) (string, string) {
	srv := server.New(server.Options{Workers: 3, QueueDepth: 64, Scale: scale,
		DefaultDeadline: 60 * time.Second})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := newClient(ts.URL)
	defer c.c.CloseIdleConnections()

	code, body, _, err := c.post("/sweeps", server.SweepSpec{})
	if err != nil || code != http.StatusAccepted {
		return "", fmt.Sprintf("submit: code %d err %v", code, err)
	}
	var sweep server.Sweep
	if err := json.Unmarshal(body, &sweep); err != nil {
		return "", err.Error()
	}
	deadline := time.Now().Add(4 * time.Minute)
	for {
		var doc struct {
			Complete bool   `json:"complete"`
			Report   string `json:"report"`
		}
		if _, err := c.get("/sweeps/"+sweep.ID, &doc); err != nil {
			return "", err.Error()
		}
		if doc.Complete {
			drainCtx, cancel := contextWithTimeout(60 * time.Second)
			defer cancel()
			if derr := srv.Drain(drainCtx); derr != nil {
				return "", "drain: " + derr.Error()
			}
			return doc.Report, ""
		}
		if time.Now().After(deadline) {
			return "", "sweep never completed"
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// checkClusterIdentity scrapes /metrics and asserts, per worker,
//
//	cluster_dispatched_total == cluster_completed_total
//	                          + cluster_failed_total
//	                          + cluster_hedge_wasted_total
//
// filling the summary's counters along the way.
func checkClusterIdentity(c *client, nWorkers int, sum *ClusterSummary) (violations []string) {
	resp, err := c.c.Get(c.base + "/metrics")
	if err != nil {
		return []string{"metrics fetch: " + err.Error()}
	}
	defer resp.Body.Close()
	vals, err := metrics.ParseText(resp.Body)
	if err != nil {
		return []string{"metrics parse: " + err.Error()}
	}
	for i := 0; i < nWorkers; i++ {
		at := func(fam string) int64 {
			return int64(vals[fmt.Sprintf("%s{worker=%q}", fam, fmt.Sprintf("w%d", i))])
		}
		d := at("cluster_dispatched_total")
		done := at("cluster_completed_total")
		failed := at("cluster_failed_total")
		wasted := at("cluster_hedge_wasted_total")
		if d != done+failed+wasted {
			violations = append(violations, fmt.Sprintf(
				"w%d: dispatched %d != completed %d + failed %d + hedge_wasted %d",
				i, d, done, failed, wasted))
		}
		sum.Dispatched += d
		sum.Completed += done
		sum.Failed += failed
		sum.HedgeWasted += wasted
	}
	sum.Hedges = int64(vals["cluster_hedges_total"])
	sum.Fallbacks = int64(vals["cluster_local_fallback_total"])
	return violations
}
