package chaos

import (
	"testing"
)

// TestClusterCampaign drives the multi-worker soak: a 3-worker sweep under
// seeded kill/restart/partition faults whose merged report must come out
// byte-identical to an uninterrupted single-process run — the same code
// path `ddserve -cluster-soak` runs at full length in CI.
func TestClusterCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos campaign is not a -short test")
	}
	sum, err := RunCluster(ClusterOptions{
		Seed:  42,
		Scale: 30,
		Log:   t.Logf,
	})
	if err != nil {
		t.Fatalf("cluster campaign failed: %v\nviolations: %v", err, sum.Violations)
	}
	if sum.Workers != 3 {
		t.Fatalf("campaign ran %d workers, want 3", sum.Workers)
	}
	if sum.Cells == 0 {
		t.Fatal("campaign completed no sweep cells")
	}
	if sum.Kills+sum.Restarts+sum.Partitions == 0 {
		t.Fatal("fault driver injected nothing; the campaign tested a calm cluster")
	}
	if sum.Shed == 0 {
		t.Fatal("overload burst shed nothing; admission control untested under cluster load")
	}
	if sum.Dispatched == 0 {
		t.Fatal("coordinator dispatched no cells remotely")
	}
	// The accounting identity is asserted per worker inside RunCluster
	// (any break lands in Violations); here we sanity-check the totals.
	if sum.Dispatched != sum.Completed+sum.Failed+sum.HedgeWasted {
		t.Fatalf("global accounting identity broken: dispatched %d != %d+%d+%d",
			sum.Dispatched, sum.Completed, sum.Failed, sum.HedgeWasted)
	}
	t.Logf("cluster campaign: %+v", sum)
}
