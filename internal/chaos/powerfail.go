package chaos

// Power-fail campaign: the crash-consistency analogue of the fault-schedule
// soak. Each trial runs the fixed resume grid against a result store
// mounted on faultfs.Sim, cuts power at a randomized step mid-sweep (every
// store write after the cut fails, exactly as a yanked cord would), reboots
// the simulated disk — dropping un-synced data and directory entries —
// and then resumes the sweep from whatever survived. The contract under
// test is the one docs/robustness.md §8 promises: the survived store
// verifies clean (complete entries or nothing, no torn bytes under live
// names), and the resumed sweep renders byte-identically to an
// uninterrupted run.

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faultfs"
	"repro/internal/store"
	"repro/internal/workloads"
)

// PowerFailOptions configures a power-fail campaign.
type PowerFailOptions struct {
	Seed   int64       // campaign seed; every trial derives from it
	Trials int         // number of randomized kill-points; <= 0 means 8
	Scale  int         // workload scale; <= 0 means 60 (the soak default)
	Log    *log.Logger // nil = silent
}

// PowerFailSummary is the campaign outcome.
type PowerFailSummary struct {
	Trials     int      // trials executed
	Crashes    int64    // simulated power cuts (== Trials)
	Survived   int64    // cells served from a crash-survived store, total
	Recomputed int64    // cells recomputed after crashes, total
	Violations []string // contract violations; empty means the campaign passed
}

// powerFailGrid is the sweep the campaign replays: the same fixed grid as
// the drain-resume check, so the two durability stories cover one another.
var powerFailGrid = struct {
	workloads []string
	configs   []core.Config
	widths    []int
}{
	workloads: []string{"compress", "espresso"},
	configs:   []core.Config{core.ConfigA, core.ConfigD},
	widths:    []int{4, 8},
}

// RunPowerFail executes the campaign. The error reports infrastructure
// failures only; contract violations land in Summary.Violations.
func RunPowerFail(opt PowerFailOptions) (*PowerFailSummary, error) {
	if opt.Trials <= 0 {
		opt.Trials = 8
	}
	if opt.Scale <= 0 {
		opt.Scale = 60
	}
	logf := func(format string, args ...any) {
		if opt.Log != nil {
			opt.Log.Printf(format, args...)
		}
	}

	// Reference: the full grid, uninterrupted, no store. Every trial's
	// post-crash resume must render exactly this.
	reference, err := renderPowerFailGrid(experiments.NewRunner(opt.Scale))
	if err != nil {
		return nil, fmt.Errorf("chaos: powerfail reference run: %v", err)
	}

	sum := &PowerFailSummary{Trials: opt.Trials}
	rng := rand.New(rand.NewSource(opt.Seed))
	for trial := 0; trial < opt.Trials; trial++ {
		if v := runPowerFailTrial(opt, rng, trial, reference, sum); v != "" {
			sum.Violations = append(sum.Violations, fmt.Sprintf("trial %d: %s", trial, v))
			logf("powerfail trial %d: VIOLATION: %s", trial, v)
		}
	}
	logf("powerfail: %d trial(s), %d crash(es), %d cell(s) survived, %d recomputed, %d violation(s)",
		sum.Trials, sum.Crashes, sum.Survived, sum.Recomputed, len(sum.Violations))
	return sum, nil
}

// runPowerFailTrial executes one randomized kill-point. Returns "" when the
// contract held.
func runPowerFailTrial(opt PowerFailOptions, rng *rand.Rand, trial int, reference string, sum *PowerFailSummary) string {
	sim := faultfs.NewSim(opt.Seed<<16 + int64(trial))
	const dir = "pfstore"
	st, err := store.OpenFS(dir, sim)
	if err != nil {
		return fmt.Sprintf("open: %v", err)
	}

	// Arm the cut a random number of mutating steps ahead: one committed
	// Put is ~7 steps, the grid is 8 cells, so the window covers cuts from
	// "before the first write" to "after the sweep finished".
	cells := len(powerFailGrid.workloads) * len(powerFailGrid.configs) * len(powerFailGrid.widths)
	window := int64(cells*7 + 7)
	sim.SetCut(sim.Steps() + 1 + rng.Int63n(window))

	// The doomed run: compute cell by cell until the power goes. Results
	// whose writes failed live only in this runner's memory — which the
	// crash then loses, because the resume uses a fresh runner.
	doomed := experiments.NewRunner(opt.Scale).WithStoreHandle(st)
	if err := forEachPowerFailCell(func(w *workloads.Workload, cfg core.Config, width int) error {
		if sim.Down() {
			return nil // the process is dead; remaining cells never ran
		}
		_, rerr := doomed.Result(w, cfg, width)
		return rerr
	}); err != nil {
		return fmt.Sprintf("doomed run: %v", err)
	}
	sim.Crash()
	sum.Crashes++

	// Reboot: the survived store must verify clean — complete committed
	// entries or clean misses, never torn bytes under a live name.
	st2, err := store.OpenFS(dir, sim)
	if err != nil {
		return fmt.Sprintf("reopen: %v", err)
	}
	rep, err := st2.Verify()
	if err != nil {
		return fmt.Sprintf("verify: %v", err)
	}
	if !rep.Clean() {
		return fmt.Sprintf("survived store fails verify: %+v", rep.Problems)
	}

	// Resume with no memory of the doomed run and compare renderings.
	resumed := experiments.NewRunner(opt.Scale).WithStoreHandle(st2)
	rendered, err := renderPowerFailGrid(resumed)
	if err != nil {
		return fmt.Sprintf("resumed run: %v", err)
	}
	stats := resumed.StoreStats()
	sum.Survived += stats.Hits
	sum.Recomputed += int64(resumed.ComputeCalls())
	if stats.Corrupt != 0 {
		return fmt.Sprintf("resumed run read %d corrupt entr(y/ies)", stats.Corrupt)
	}
	if rendered != reference {
		return fmt.Sprintf("resumed report diverged from uninterrupted run:\n--- resumed ---\n%s--- reference ---\n%s", rendered, reference)
	}
	return ""
}

// forEachPowerFailCell walks the grid in its one deterministic order.
func forEachPowerFailCell(fn func(*workloads.Workload, core.Config, int) error) error {
	for _, name := range powerFailGrid.workloads {
		w, err := workloads.ByName(name)
		if err != nil {
			return err
		}
		for _, cfg := range powerFailGrid.configs {
			for _, width := range powerFailGrid.widths {
				if err := fn(w, cfg, width); err != nil {
					return fmt.Errorf("%s/%s/w%d: %w", name, cfg.Name, width, err)
				}
			}
		}
	}
	return nil
}

// renderPowerFailGrid runs the full grid on r and renders a deterministic
// per-cell report: the byte-identity oracle for the resume comparison.
func renderPowerFailGrid(r *experiments.Runner) (string, error) {
	var b strings.Builder
	err := forEachPowerFailCell(func(w *workloads.Workload, cfg core.Config, width int) error {
		res, err := r.Result(w, cfg, width)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "%s %s w%d: instrs=%d cycles=%d collapsed=%d mispredicts=%d\n",
			w.Name, cfg.Name, width, res.Instructions, res.Cycles, res.CollapsedInstrs, res.Mispredicts)
		return nil
	})
	if err != nil {
		return "", err
	}
	return b.String(), nil
}
