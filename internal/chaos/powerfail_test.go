package chaos

import (
	"strings"
	"testing"
)

// TestPowerFailCampaignFixedSeed: the CI-gating configuration — a fixed
// seed, a handful of randomized kill-points, zero tolerated violations.
func TestPowerFailCampaignFixedSeed(t *testing.T) {
	sum, err := RunPowerFail(PowerFailOptions{Seed: 7, Trials: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Violations) != 0 {
		t.Fatalf("power-fail campaign violations:\n%s", strings.Join(sum.Violations, "\n"))
	}
	if sum.Crashes != int64(sum.Trials) {
		t.Fatalf("crashes = %d, want one per trial (%d)", sum.Crashes, sum.Trials)
	}
	// The campaign is vacuous unless both fates occur across trials: some
	// cells must survive crashes, and some must need recomputation.
	if sum.Survived == 0 {
		t.Fatal("no cell ever survived a crash — the kill-points all landed before the first commit")
	}
	if sum.Recomputed == 0 {
		t.Fatal("no cell was ever recomputed — the kill-points all landed after the sweep")
	}
}

// TestPowerFailSeedsDiffer: different seeds place different kill-points;
// the campaign must not silently collapse to one schedule.
func TestPowerFailSeedsDiffer(t *testing.T) {
	a, err := RunPowerFail(PowerFailOptions{Seed: 1, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPowerFail(PowerFailOptions{Seed: 2, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Violations) != 0 || len(b.Violations) != 0 {
		t.Fatalf("violations: %v / %v", a.Violations, b.Violations)
	}
	if a.Survived == b.Survived && a.Recomputed == b.Recomputed {
		t.Logf("note: seeds 1 and 2 happened to survive/recompute identical cell counts (%d/%d)", a.Survived, a.Recomputed)
	}
}
