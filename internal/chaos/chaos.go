// Package chaos is the seeded soak harness for the serving layer
// (internal/server): it drives a real HTTP server through randomized fault
// schedules — transient cell errors, panicking cells, failing store I/O,
// slow-cell overload — and asserts the robustness contract from
// docs/robustness.md §7 on every schedule:
//
//   - every admitted job reaches a terminal state (no hangs: every HTTP
//     call runs under a client timeout);
//   - every shed request is an immediate 429 with Retry-After, never a
//     queue wait;
//   - the process survives panicking cells, and /healthz stays parseable
//     throughout;
//   - drain completes cleanly and the worker pool's goroutines are gone
//     afterwards (leak check against a pre-server baseline);
//
// and once per campaign: a sweep interrupted by a drain and resumed from
// the durable store by a second server renders byte-identically to the
// same sweep run uninterrupted on a fresh store.
//
// Everything is deterministic per (Seed, Schedules): the same campaign
// replays the same faults.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/store"
)

// Options configures a campaign.
type Options struct {
	// Seed makes the campaign reproducible; schedule i derives its own rng
	// from it.
	Seed int64
	// Schedules is the number of randomized fault schedules; <= 0 means 64.
	Schedules int
	// Dir is the scratch directory for durable stores; "" means a fresh
	// temp dir, removed afterwards.
	Dir string
	// Log, when non-nil, receives one line per schedule.
	Log func(format string, args ...any)
}

// Summary is the campaign outcome.
type Summary struct {
	Schedules  int            `json:"schedules"`
	Submitted  int            `json:"submitted"`
	Accepted   int            `json:"accepted"`
	Shed       int            `json:"shed"`
	Done       int            `json:"done"`
	Failed     int            `json:"failed"`
	FailKinds  map[string]int `json:"fail_kinds"`
	ResumeOK   bool           `json:"resume_ok"`
	Violations []string       `json:"violations,omitempty"`
}

// fault kinds a schedule draws from, rotated so every campaign of >= 4
// schedules exercises all of them.
const (
	faultTransient = iota // injected errors at the cell entry point
	faultPanic            // panicking cells (isolation + quarantine)
	faultStore            // failing store I/O (circuit breaker)
	faultOverload         // slow cells + submission burst (load shedding)
	numFaultKinds
)

var faultName = [...]string{"transient", "panic", "store", "overload"}

// Run executes the campaign and returns its Summary. The error is non-nil
// iff any schedule violated an invariant (the violations are also in the
// Summary).
func Run(opt Options) (*Summary, error) {
	if opt.Schedules <= 0 {
		opt.Schedules = 64
	}
	if opt.Log == nil {
		opt.Log = func(string, ...any) {}
	}
	if opt.Dir == "" {
		dir, err := os.MkdirTemp("", "ddserve-chaos-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		opt.Dir = dir
	}
	defer faultinject.Reset()

	sum := &Summary{Schedules: opt.Schedules, FailKinds: make(map[string]int)}
	for i := 0; i < opt.Schedules; i++ {
		kind := i % numFaultKinds
		vs := runSchedule(i, kind, opt, sum)
		status := "ok"
		if len(vs) > 0 {
			status = strings.Join(vs, "; ")
		}
		opt.Log("chaos: schedule %d/%d (%s): %s", i+1, opt.Schedules, faultName[kind], status)
		for _, v := range vs {
			sum.Violations = append(sum.Violations, fmt.Sprintf("schedule %d (%s): %s", i, faultName[kind], v))
		}
	}

	if v := checkResume(opt); v != "" {
		sum.Violations = append(sum.Violations, "resume: "+v)
	} else {
		sum.ResumeOK = true
	}
	opt.Log("chaos: resume check: ok=%v", sum.ResumeOK)

	if len(sum.Violations) > 0 {
		return sum, fmt.Errorf("chaos: %d invariant violation(s); first: %s",
			len(sum.Violations), sum.Violations[0])
	}
	return sum, nil
}

// client wraps http with a hard timeout: any endpoint that hangs turns
// into a violation instead of wedging the campaign.
type client struct {
	base string
	c    *http.Client
}

func newClient(base string) *client {
	return &client{base: base, c: &http.Client{Timeout: 15 * time.Second}}
}

func (c *client) post(path string, body any) (int, []byte, http.Header, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := c.c.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, buf.Bytes(), resp.Header, nil
}

func (c *client) get(path string, out any) (int, error) {
	resp, err := c.c.Get(c.base + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// specPool is the grid chaos jobs are drawn from. Small workloads only —
// the server runs them at a reduced scale, so cells cost milliseconds.
var (
	poolWorkloads = []string{"compress", "espresso", "li"}
	poolConfigs   = []string{"A", "B", "D", "E"}
	poolWidths    = []int{2, 4, 8}
)

func randomSpec(rng *rand.Rand) server.JobSpec {
	return server.JobSpec{
		Workload:  poolWorkloads[rng.Intn(len(poolWorkloads))],
		Config:    poolConfigs[rng.Intn(len(poolConfigs))],
		Width:     poolWidths[rng.Intn(len(poolWidths))],
		SelfCheck: rng.Intn(8) == 0,
	}
}

var errInjected = errors.New("chaos: injected fault")

// armFaults installs schedule i's fault plan and reports whether the
// schedule needs a durable store (store faults are meaningless without
// one).
func armFaults(kind int, rng *rand.Rand) (wantStore bool) {
	switch kind {
	case faultTransient:
		// Errors at the cell entry point: persistent or one-shot, after a
		// few clean passes. Jobs fail with KindSim (or succeed after a
		// retry) — but always terminate.
		after := int64(rng.Intn(4))
		if rng.Intn(2) == 0 {
			faultinject.Arm(faultinject.PointExperiment, errInjected, after)
		} else {
			faultinject.ArmOnce(faultinject.PointExperiment, errInjected, after)
		}
	case faultPanic:
		// Every cell compute panics. The process must survive: panics are
		// isolated into KindPanic and repeat offenders quarantined.
		faultinject.ArmFunc(faultinject.PointCoreRun, func() error {
			panic("chaos: injected cell panic")
		}, int64(rng.Intn(3)))
	case faultStore:
		// A failing disk: reads and writes error behind the breaker. Jobs
		// must still succeed — the breaker degrades durability, never
		// results.
		faultinject.Arm(faultinject.PointStoreGet, errInjected, int64(rng.Intn(3)))
		faultinject.Arm(faultinject.PointStorePut, errInjected, 0)
		return true
	case faultOverload:
		// Slow cells: every compute sleeps, so a submission burst overruns
		// the queue and admission control must shed.
		delay := time.Duration(20+rng.Intn(40)) * time.Millisecond
		faultinject.ArmFunc(faultinject.PointExperiment, func() error {
			time.Sleep(delay)
			return nil
		}, 0)
	}
	return false
}

func runSchedule(i, kind int, opt Options, sum *Summary) (violations []string) {
	rng := rand.New(rand.NewSource(opt.Seed + int64(i)*7919))
	faultinject.Reset()
	defer faultinject.Reset()

	baseline := runtime.NumGoroutine()

	srvOpt := server.Options{
		Workers:          1 + rng.Intn(3),
		QueueDepth:       3 + rng.Intn(6),
		Scale:            40 + rng.Intn(40),
		Retries:          rng.Intn(2),
		QuarantineAfter:  2,
		DefaultDeadline:  30 * time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  200 * time.Millisecond,
	}
	if rng.Intn(2) == 0 {
		srvOpt.StallTimeout = 5 * time.Second
	}
	if armFaults(kind, rng) {
		st, err := store.Open(filepath.Join(opt.Dir, fmt.Sprintf("sched-%d", i)))
		if err != nil {
			return []string{"store open: " + err.Error()}
		}
		srvOpt.Store = st
	}

	srv := server.New(srvOpt)
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	c := newClient(ts.URL)
	acceptedBefore := sum.Accepted

	// Submission burst. Oversize it relative to the queue on overload
	// schedules so shedding is guaranteed.
	n := srvOpt.QueueDepth + 2 + rng.Intn(8)
	if kind == faultOverload {
		n = srvOpt.QueueDepth*3 + 8
	}
	var ids []string
	shedHere := 0
	for j := 0; j < n; j++ {
		sum.Submitted++
		code, body, hdr, err := c.post("/jobs", randomSpec(rng))
		switch {
		case err != nil:
			violations = append(violations, "submit: "+err.Error())
		case code == http.StatusAccepted:
			var job server.Job
			if jerr := json.Unmarshal(body, &job); jerr != nil || job.ID == "" {
				violations = append(violations, fmt.Sprintf("202 with unparseable job doc: %s", body))
				continue
			}
			ids = append(ids, job.ID)
			sum.Accepted++
		case code == http.StatusTooManyRequests:
			if hdr.Get("Retry-After") == "" {
				violations = append(violations, "429 without Retry-After")
			}
			shedHere++
			sum.Shed++
		default:
			violations = append(violations, fmt.Sprintf("submission got %d: %s", code, body))
		}
	}
	if kind == faultOverload && shedHere == 0 {
		violations = append(violations, "overload burst was never shed")
	}

	// Every admitted job must reach a terminal state.
	deadline := time.Now().Add(90 * time.Second)
	for _, id := range ids {
		for {
			var job server.Job
			code, err := c.get("/jobs/"+id, &job)
			if err != nil || code != http.StatusOK {
				violations = append(violations, fmt.Sprintf("get %s: code %d err %v", id, code, err))
				break
			}
			if job.State.Terminal() {
				switch job.State {
				case server.StateDone:
					sum.Done++
					if job.Result == nil || job.Result.IPC <= 0 {
						violations = append(violations, id+": done without a plausible result")
					}
				case server.StateFailed:
					sum.Failed++
					if job.Error == nil || job.Error.Kind == "" {
						violations = append(violations, id+": failed without a structured error")
					} else {
						sum.FailKinds[job.Error.Kind]++
					}
				default:
					violations = append(violations, id+": canceled before any drain began")
				}
				break
			}
			if time.Now().After(deadline) {
				violations = append(violations, id+": never reached a terminal state")
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// healthz must stay parseable under every fault schedule.
	var h server.Health
	if code, err := c.get("/healthz", &h); err != nil || code != http.StatusOK {
		violations = append(violations, fmt.Sprintf("healthz: code %d err %v", code, err))
	} else if h.State != "serving" {
		violations = append(violations, "healthz state = "+h.State)
	}

	// Drain must complete cleanly (all jobs are terminal already).
	drainCtx, cancel := contextWithTimeout(60 * time.Second)
	err := srv.Drain(drainCtx)
	cancel()
	if err != nil {
		violations = append(violations, "drain: "+err.Error())
	}
	if code, _, _, err := c.post("/jobs", randomSpec(rng)); err != nil || code != http.StatusServiceUnavailable {
		violations = append(violations, fmt.Sprintf("post-drain submission: code %d err %v (want 503)", code, err))
	}
	if code, _ := c.get("/readyz", nil); code != http.StatusServiceUnavailable {
		violations = append(violations, fmt.Sprintf("post-drain readyz: %d (want 503)", code))
	}

	// Metric invariants: after the drain every admitted job is terminal, so
	// the registry's outcome counters must exactly partition the admissions
	// (each server is fresh per schedule, so totals are per-schedule), the
	// job-latency histogram must have observed each job exactly once, and
	// the shed counter must match the 429s this client saw.
	violations = append(violations, checkMetricInvariants(c, sum.Accepted-acceptedBefore, shedHere)...)

	ts.Close()
	c.c.CloseIdleConnections()

	// Goroutine leak check: the pool and per-job goroutines must be gone.
	// Settle loop with slack for runtime/background goroutines.
	ok := false
	for settle := time.Now().Add(10 * time.Second); time.Now().Before(settle); {
		if runtime.NumGoroutine() <= baseline+4 {
			ok = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !ok {
		violations = append(violations, fmt.Sprintf(
			"goroutine leak after drain: %d running, baseline %d", runtime.NumGoroutine(), baseline))
	}
	return violations
}

// checkMetricInvariants fetches the drained server's /metrics page and
// asserts the accounting identities docs/observability.md promises:
//
//	server_jobs_admitted_total = admitted this schedule
//	admitted = done + failed + canceled       (outcomes partition jobs)
//	server_job_seconds_count   = admitted     (one observation per job)
//	server_shed_total          = 429s observed by the client
func checkMetricInvariants(c *client, admitted, shed int) (violations []string) {
	resp, err := c.c.Get(c.base + "/metrics")
	if err != nil {
		return []string{"metrics fetch: " + err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return []string{fmt.Sprintf("metrics fetch: code %d", resp.StatusCode)}
	}
	vals, err := metrics.ParseText(resp.Body)
	if err != nil {
		return []string{"metrics parse: " + err.Error()}
	}
	intOf := func(name string) int {
		return int(vals[name])
	}
	gotAdmitted := intOf("server_jobs_admitted_total")
	if gotAdmitted != admitted {
		violations = append(violations, fmt.Sprintf(
			"metrics: admitted_total %d, client saw %d accepted", gotAdmitted, admitted))
	}
	outcomes := intOf("server_jobs_done_total") + intOf("server_jobs_failed_total") +
		intOf("server_jobs_canceled_total")
	if outcomes != gotAdmitted {
		violations = append(violations, fmt.Sprintf(
			"metrics: outcomes done+failed+canceled = %d do not partition admitted %d",
			outcomes, gotAdmitted))
	}
	if n := intOf("server_job_seconds_count"); n != gotAdmitted {
		violations = append(violations, fmt.Sprintf(
			"metrics: job_seconds_count %d != admitted %d", n, gotAdmitted))
	}
	if n := intOf("server_shed_total"); n != shed {
		violations = append(violations, fmt.Sprintf(
			"metrics: shed_total %d, client saw %d 429s", n, shed))
	}
	return violations
}

// resumeSweep is the fixed grid the resume check runs: small enough to
// finish quickly, large enough that a drain can interrupt it midway.
var resumeSweep = server.SweepSpec{
	Workloads: []string{"compress", "espresso"},
	Configs:   []string{"A", "D"},
	Widths:    []int{4, 8},
}

// checkResume asserts the campaign's durability contract: a sweep
// interrupted by a drain and finished by a second server over the same
// store renders byte-identically to the same sweep run uninterrupted on a
// fresh store. Returns "" on success.
func checkResume(opt Options) string {
	faultinject.Reset()
	const scale = 60

	newSrv := func(dir string, workers int) (*server.Server, *httptest.Server, *client, error) {
		st, err := store.Open(dir)
		if err != nil {
			return nil, nil, nil, err
		}
		srv := server.New(server.Options{Workers: workers, QueueDepth: 64, Scale: scale,
			DefaultDeadline: 30 * time.Second, Store: st})
		srv.Start()
		ts := httptest.NewServer(srv.Handler())
		return srv, ts, newClient(ts.URL), nil
	}

	runSweep := func(c *client, waitDone int) (server.Sweep, string, error) {
		code, body, _, err := c.post("/sweeps", resumeSweep)
		if err != nil || code != http.StatusAccepted {
			return server.Sweep{}, "", fmt.Errorf("sweep submit: code %d err %v", code, err)
		}
		var sweep server.Sweep
		if err := json.Unmarshal(body, &sweep); err != nil {
			return server.Sweep{}, "", err
		}
		deadline := time.Now().Add(120 * time.Second)
		for {
			var doc struct {
				Done     int    `json:"done"`
				Complete bool   `json:"complete"`
				Report   string `json:"report"`
			}
			if _, err := c.get("/sweeps/"+sweep.ID, &doc); err != nil {
				return sweep, "", err
			}
			if waitDone > 0 && doc.Done >= waitDone {
				return sweep, doc.Report, nil // partial: caller drains now
			}
			if waitDone <= 0 && doc.Complete {
				return sweep, doc.Report, nil
			}
			if time.Now().After(deadline) {
				return sweep, "", errors.New("sweep never finished")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	drain := func(srv *server.Server, ts *httptest.Server, c *client) error {
		ctx, cancel := contextWithTimeout(60 * time.Second)
		defer cancel()
		err := srv.Drain(ctx)
		ts.Close()
		c.c.CloseIdleConnections()
		return err
	}

	dirA := filepath.Join(opt.Dir, "resume-interrupted")
	dirB := filepath.Join(opt.Dir, "resume-clean")

	// Server A: one worker, so the sweep progresses cell by cell; drain
	// after two cells, killing the rest of the grid mid-flight.
	srvA, tsA, cA, err := newSrv(dirA, 1)
	if err != nil {
		return err.Error()
	}
	if _, _, err := runSweep(cA, 2); err != nil {
		return "interrupted run: " + err.Error()
	}
	if err := drain(srvA, tsA, cA); err != nil {
		return "interrupting drain: " + err.Error()
	}

	// Server B: same store. Completed cells load from disk; the rest are
	// computed fresh. The rendered report must not remember the interruption.
	srvB, tsB, cB, err := newSrv(dirA, 2)
	if err != nil {
		return err.Error()
	}
	_, resumed, err := runSweep(cB, 0)
	if err != nil {
		return "resumed run: " + err.Error()
	}
	if err := drain(srvB, tsB, cB); err != nil {
		return "post-resume drain: " + err.Error()
	}

	// Server C: fresh store, uninterrupted baseline.
	srvC, tsC, cC, err := newSrv(dirB, 2)
	if err != nil {
		return err.Error()
	}
	_, unbroken, err := runSweep(cC, 0)
	if err != nil {
		return "uninterrupted run: " + err.Error()
	}
	if err := drain(srvC, tsC, cC); err != nil {
		return "baseline drain: " + err.Error()
	}

	if resumed != unbroken {
		return fmt.Sprintf("resumed sweep diverged from uninterrupted run:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s",
			resumed, unbroken)
	}
	if strings.Contains(resumed, "n/a") {
		return "resumed sweep has degraded cells:\n" + resumed
	}
	return ""
}

// contextWithTimeout is context.WithTimeout on Background, split out so
// call sites stay one line.
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}
