package chaos

import (
	"testing"
)

// TestShortCampaign runs one schedule of every fault kind plus the
// kill-and-resume check — the same code path `ddserve -soak` runs at full
// length in CI.
func TestShortCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign is not a -short test")
	}
	sum, err := Run(Options{
		Seed:      42,
		Schedules: 4, // one per fault kind
		Dir:       t.TempDir(),
		Log:       t.Logf,
	})
	if err != nil {
		t.Fatalf("campaign failed: %v\nviolations: %v", err, sum.Violations)
	}
	if sum.Accepted == 0 {
		t.Fatal("campaign admitted no jobs")
	}
	if sum.Shed == 0 {
		t.Fatal("overload schedule shed nothing; admission control untested")
	}
	if !sum.ResumeOK {
		t.Fatal("resume check did not run clean")
	}
	// Fault schedules must actually produce structured failures (panic
	// schedules at minimum — every cell compute panics there).
	if len(sum.FailKinds) == 0 {
		t.Fatalf("no structured failures recorded across fault schedules: %+v", sum)
	}
	t.Logf("campaign: %+v", sum)
}

// TestCampaignIsDeterministic replays a seed and expects the same
// submission plan: the fault schedules and job specs are pure functions of
// the seed. (Admission outcomes race against worker timing by design, so
// only the plan is compared.)
func TestCampaignIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign is not a -short test")
	}
	run := func(dir string) *Summary {
		sum, err := Run(Options{Seed: 7, Schedules: 2, Dir: dir})
		if err != nil {
			t.Fatalf("campaign failed: %v", err)
		}
		return sum
	}
	a, b := run(t.TempDir()), run(t.TempDir())
	if a.Submitted != b.Submitted {
		t.Fatalf("same seed, different submission plans: %d vs %d", a.Submitted, b.Submitted)
	}
}
