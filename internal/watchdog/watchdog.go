// Package watchdog detects hung operations through progress heartbeats.
//
// The experiment pipeline's failure modes fall into two families: loud
// (errors, panics, cancellation — all handled by the PR-1 taxonomy) and
// silent (a cell that simply stops making progress, wedging a Prefetch
// worker forever). This package handles the silent family: Run executes an
// operation on its own goroutine, watches a heartbeat the operation must
// keep beating, and — when the heartbeat goes stale past the stall
// deadline — cancels just that operation and returns ErrStalled instead of
// waiting forever.
//
// A stalled error is deliberately NOT a context cancellation: callers that
// treat cancellation as fatal (the experiments runner) must see a stalled
// cell as one degraded cell, not as the end of the world. Run therefore
// never wraps context.Canceled into its stall errors.
//
// Cooperative cancellation is the best Go can do: a worker wedged in a
// tight loop or a blocking syscall cannot be killed. Run waits a bounded
// grace period after canceling; if the worker still has not returned it is
// abandoned — its goroutine leaks until it eventually unblocks, but the
// caller (and its worker-pool slot) is freed. Abandoned workers deliver
// their eventual result into a buffered channel nobody reads, so there is
// no shared-memory race with the caller.
package watchdog

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// ErrStalled marks an operation reaped because its heartbeat went stale
// past the stall deadline. internal/retry classifies it as permanent: a
// hang in a deterministic pipeline will hang again, and retrying doubles
// the damage.
var ErrStalled = errors.New("watchdog: stalled")

// abandoned counts worker goroutines that outlived their grace period and
// were left running (see the package comment). It only ever grows: an
// abandoned goroutine may eventually unblock and exit, but the watchdog no
// longer observes it, so the counter records leak *pressure*, not live
// leaks. Long-running processes (internal/server's /healthz) report it so
// operators can see a pipeline that keeps wedging before it exhausts
// memory.
var abandoned atomic.Int64

// Abandoned reports how many supervised workers have been abandoned
// process-wide since start.
func Abandoned() int64 { return abandoned.Load() }

// stalls counts operations reaped as ErrStalled process-wide. Like
// abandoned, it is a package-level atomic bridged into the serving
// registry (internal/server wires it to watchdog_stalls_total on
// /metrics) so stall pressure is visible without plumbing a handle
// through every Run call site.
var stalls atomic.Int64

// Stalls reports how many supervised operations have been reaped as
// stalled process-wide since start.
func Stalls() int64 { return stalls.Load() }

// PanicError reports a panic recovered from a supervised worker goroutine.
// Without this recovery a panicking worker would crash the whole process
// from a goroutine no caller can defer around; with it, the panic becomes
// an ordinary — permanent, never retried — error carrying the panic value
// and stack. Serving layers use it to isolate one crashing job from its
// neighbors.
type PanicError struct {
	Value any    // the recovered panic value
	Stack string // the panicking goroutine's stack
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("watchdog: worker panicked: %v", e.Value) }

// Permanent marks panics as never worth retrying: the pipeline is
// deterministic, so the same input panics the same way again.
func (e *PanicError) Permanent() bool { return true }

// outcome carries a worker's result through the done channel, so the
// caller and a possibly-abandoned worker never share memory.
type outcome[T any] struct {
	val T
	err error
}

// pollInterval is how often the heartbeat is inspected: a fraction of the
// stall deadline, clamped to keep tiny deadlines responsive and huge ones
// cheap.
func pollInterval(stall time.Duration) time.Duration {
	p := stall / 8
	if p < time.Millisecond {
		p = time.Millisecond
	}
	if p > time.Second {
		p = time.Second
	}
	return p
}

// gracePeriod is how long a canceled worker gets to unwind before being
// abandoned.
func gracePeriod(stall time.Duration) time.Duration {
	g := stall
	if g < 50*time.Millisecond {
		g = 50 * time.Millisecond
	}
	if g > 2*time.Second {
		g = 2 * time.Second
	}
	return g
}

// Run executes fn under heartbeat supervision and returns its result.
//
// fn receives a derived context (canceled on stall or when ctx ends) and a
// beat function it must call to signal progress — typically wired into
// core.Params.Progress. If no beat arrives for longer than stall, the
// derived context is canceled and Run returns ErrStalled (wrapping a
// description of how long the operation was silent); fn's eventual return
// value is discarded. stall <= 0 disables supervision entirely: fn runs on
// the calling goroutine with a no-op beat.
//
// When ctx itself is canceled, Run cancels fn and waits the same bounded
// grace period; the returned error is then ctx's (a true cancellation),
// never ErrStalled.
func Run[T any](ctx context.Context, stall time.Duration, fn func(ctx context.Context, beat func()) (T, error)) (T, error) {
	if stall <= 0 {
		return fn(ctx, func() {})
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := time.Now()
	var lastBeat atomic.Int64 // elapsed nanos since start at last beat
	beat := func() { lastBeat.Store(int64(time.Since(start))) }

	done := make(chan outcome[T], 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				var zero T
				done <- outcome[T]{zero, &PanicError{Value: r, Stack: string(debug.Stack())}}
			}
		}()
		val, err := fn(cctx, beat)
		done <- outcome[T]{val, err}
	}()

	var zero T
	ticker := time.NewTicker(pollInterval(stall))
	defer ticker.Stop()
	for {
		select {
		case out := <-done:
			return out.val, out.err

		case <-ctx.Done():
			// True cancellation from above: give fn a grace period to unwind,
			// then abandon it. Either way the caller sees ctx's error.
			cancel()
			select {
			case out := <-done:
				return out.val, out.err
			case <-time.After(gracePeriod(stall)):
				abandoned.Add(1)
				return zero, fmt.Errorf("watchdog: worker unresponsive %v after cancellation, abandoned: %w",
					gracePeriod(stall), ctx.Err())
			}

		case <-ticker.C:
			idle := time.Since(start) - time.Duration(lastBeat.Load())
			if idle <= stall {
				continue
			}
			// Stalled. Cancel the operation and wait briefly for a
			// cooperative exit; note the worker's own error only as text
			// (never %w) so a stall is not mistaken for a cancellation.
			cancel()
			select {
			case out := <-done:
				if out.err != nil {
					stalls.Add(1)
					return zero, fmt.Errorf("%w: no progress for %v (worker exited: %v)", ErrStalled, idle.Round(time.Millisecond), out.err)
				}
				// The worker squeaked through between the staleness check
				// and the cancel taking effect; its result is real.
				return out.val, nil
			case <-time.After(gracePeriod(stall)):
				abandoned.Add(1)
				stalls.Add(1)
				return zero, fmt.Errorf("%w: no progress for %v; worker unresponsive, abandoned", ErrStalled, idle.Round(time.Millisecond))
			}
		}
	}
}
