package watchdog

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestHealthyOperationPassesThrough: an operation that keeps beating is
// never reaped, even when it runs far longer than the stall deadline.
func TestHealthyOperationPassesThrough(t *testing.T) {
	got, err := Run(context.Background(), 40*time.Millisecond, func(ctx context.Context, beat func()) (int, error) {
		for i := 0; i < 20; i++ {
			beat()
			time.Sleep(10 * time.Millisecond) // total 200ms >> 40ms stall
		}
		return 42, nil
	})
	if err != nil {
		t.Fatalf("healthy operation reaped: %v", err)
	}
	if got != 42 {
		t.Fatalf("result %d, want 42", got)
	}
}

// TestStallIsDetectedAndIsNotCancellation: a silent operation is reaped
// with ErrStalled, and the error must NOT look like a context
// cancellation (stalls degrade one cell; cancellations abort everything).
func TestStallIsDetectedAndIsNotCancellation(t *testing.T) {
	start := time.Now()
	_, err := Run(context.Background(), 50*time.Millisecond, func(ctx context.Context, beat func()) (int, error) {
		<-ctx.Done() // cooperative: exits promptly once canceled
		return 0, ctx.Err()
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stall error must not wrap a cancellation: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stall detection took %v", elapsed)
	}
}

// TestWedgedWorkerIsAbandoned: a worker that ignores cancellation entirely
// is abandoned after the grace period — the caller gets ErrStalled instead
// of blocking forever.
func TestWedgedWorkerIsAbandoned(t *testing.T) {
	unblock := make(chan struct{})
	t.Cleanup(func() { close(unblock) })
	start := time.Now()
	_, err := Run(context.Background(), 50*time.Millisecond, func(ctx context.Context, beat func()) (int, error) {
		<-unblock // ignores ctx: truly wedged until test cleanup
		return 7, nil
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("abandonment took %v", elapsed)
	}
}

// TestParentCancellationStaysCancellation: when the caller's own context
// ends, the error is the context's — never ErrStalled.
func TestParentCancellationStaysCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := Run(ctx, time.Hour, func(ctx context.Context, beat func()) (int, error) {
		beat()
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrStalled) {
		t.Fatalf("parent cancellation misreported as stall: %v", err)
	}
}

// TestDisabledSupervisionIsTransparent: stall <= 0 runs fn inline and
// passes values and errors straight through.
func TestDisabledSupervisionIsTransparent(t *testing.T) {
	boom := errors.New("boom")
	got, err := Run(context.Background(), 0, func(ctx context.Context, beat func()) (string, error) {
		beat() // must be callable even when disabled
		return "ok", boom
	})
	if got != "ok" || !errors.Is(err, boom) {
		t.Fatalf("passthrough broken: %q, %v", got, err)
	}
}

// TestWorkerErrorPassesThrough: an operation failing on its own (while
// still beating) reports its own error, not a stall.
func TestWorkerErrorPassesThrough(t *testing.T) {
	boom := errors.New("worker failed")
	_, err := Run(context.Background(), time.Hour, func(ctx context.Context, beat func()) (int, error) {
		beat()
		return 0, boom
	})
	if !errors.Is(err, boom) || errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want plain worker error", err)
	}
}

// TestAbandonedCounterTracksReapedWorkers: every worker that outlives its
// grace period bumps the process-wide Abandoned counter — the leak-pressure
// gauge internal/server's /healthz reports.
func TestAbandonedCounterTracksReapedWorkers(t *testing.T) {
	unblock := make(chan struct{})
	t.Cleanup(func() { close(unblock) })
	before := Abandoned()
	_, err := Run(context.Background(), 50*time.Millisecond, func(ctx context.Context, beat func()) (int, error) {
		<-unblock // ignores ctx: wedged until test cleanup
		return 0, nil
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if got := Abandoned() - before; got != 1 {
		t.Fatalf("Abandoned grew by %d, want 1", got)
	}
	// A healthy supervised run must not move the counter.
	if _, err := Run(context.Background(), time.Hour, func(ctx context.Context, beat func()) (int, error) {
		beat()
		return 1, nil
	}); err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
	if got := Abandoned() - before; got != 1 {
		t.Fatalf("Abandoned grew by %d after a healthy run, want still 1", got)
	}
}

// TestPanicIsIsolatedIntoPanicError: a panic on the supervised goroutine
// must not crash the process; it surfaces as a *PanicError that carries the
// panic value, keeps the stack, and classifies as permanent.
func TestPanicIsIsolatedIntoPanicError(t *testing.T) {
	_, err := Run(context.Background(), time.Hour, func(ctx context.Context, beat func()) (int, error) {
		beat()
		panic("scheduler state corrupted")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "scheduler state corrupted" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if pe.Stack == "" {
		t.Fatal("panic stack not captured")
	}
	if !pe.Permanent() {
		t.Fatal("panics must classify as permanent (never retried)")
	}
}
