// Package isa defines SV8, a SPARC-v8-inspired 32-bit RISC instruction set
// used throughout the repository. SV8 reproduces the properties the MICRO-96
// dependence speculation & collapsing study depends on: a zero register
// (like SPARC's %g0), two-source/one-destination integer operations,
// condition-code generation feeding conditional branches, and register+
// register / register+immediate addressing for loads and stores.
//
// The package is purely declarative: instruction words are Go structs, not
// binary encodings. The assembler (internal/asm) produces them, the emulator
// (internal/vm) executes them, and the dependence simulator (internal/core)
// analyses them.
package isa

import "fmt"

// Op enumerates the SV8 opcodes.
type Op uint8

// The SV8 opcode space. Arithmetic, logical and shift operations take two
// sources (register or register+immediate) and one destination. Cmp writes
// the condition-code register (register CC) exactly like SPARC's subcc with
// %g0 destination. Conditional branches read CC.
const (
	Nop Op = iota

	// Arithmetic (class Ar).
	Add
	Sub
	Cmp // subtract, result discarded, sets CC

	// Logical (class Lg).
	And
	Or
	Xor
	Andn // a &^ b
	Orn  // a | ^b
	Xnor // ^(a ^ b)

	// Shift (class Sh). Shift distances use the low 5 bits of the source.
	Sll
	Srl
	Sra

	// Moves (class Mv).
	Mov // rd = rs1
	Ldi // rd = imm (32-bit immediate materialization)

	// Long-latency arithmetic (classes Mul, Div). Not collapsible.
	Mul
	Div
	Rem

	// Memory (classes Ld, St). Address = rs1 + rs2 or rs1 + imm.
	Ld // rd = mem[addr]
	St // mem[addr] = rd (Rd holds the stored value's register)

	// Conditional branches (class Brc). All read CC.
	Beq
	Bne
	Blt
	Ble
	Bgt
	Bge
	Bltu
	Bgeu

	// Other control transfers (class Ctl): always predicted correctly in
	// the paper's model.
	Jmp  // unconditional direct jump
	Call // r31 = return PC; jump to target
	Ret  // jump to r31
	Jr   // indirect jump to rs1 (+imm)

	// Out appends the value in Rd to the program's output stream. It is the
	// emulator's I/O device; class Sys, never collapsible.
	Out

	// Halt stops the emulator.
	Halt

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// Class is the paper's operation-type taxonomy (Section 3 and Tables 5-6):
// ar (arithmetic), lg (logical), sh (shift), mv (move), ld (load), st
// (store), brc (conditional branch). Mul/Div, other control transfers and
// system operations are tracked separately because they never collapse.
type Class uint8

// Operation classes.
const (
	ClassNop Class = iota
	ClassAr
	ClassLg
	ClassSh
	ClassMv
	ClassMul
	ClassDiv
	ClassLd
	ClassSt
	ClassBrc
	ClassCtl
	ClassSys

	numClasses
)

// NumClasses is the number of defined operation classes.
const NumClasses = int(numClasses)

// Register file layout. SV8 has 32 integer registers; R0 is hard-wired to
// zero (reads return 0, writes are discarded), mirroring SPARC's %g0. The
// condition-code register is modelled as architectural register CC so that
// the dependence simulator can treat cc-generation uniformly with register
// dataflow.
const (
	R0 = 0 // always zero
	SP = 29
	FP = 30
	RA = 31 // link register written by Call
	CC = 32 // condition codes (virtual register)

	// NumRegs counts addressable dataflow registers including CC.
	NumRegs = 33
)

// ABI register conventions used by the MiniC compiler.
const (
	RegRet      = 1  // return value
	RegArg0     = 2  // first of six argument registers r2..r7
	NumArgRegs  = 6  //
	RegTmp0     = 8  // first of twelve expression temporaries r8..r19
	NumTmpRegs  = 12 //
	RegSave0    = 20 // first of eight register-allocated locals r20..r27
	NumSaveRegs = 8  //
	RegScratch  = 28 // assembler/codegen scratch
)

// Instr is one SV8 instruction. Interpretation of the fields depends on Op:
//
//   - ALU ops (Add..Sra, Mul, Div, Rem): Rd = Rs1 op (Rs2 | Imm).
//   - Cmp: CC = compare Rs1 with (Rs2 | Imm).
//   - Mov: Rd = Rs1. Ldi: Rd = Imm.
//   - Ld: Rd = mem[Rs1 + (Rs2 | Imm)].
//   - St: mem[Rs1 + (Rs2 | Imm)] = Rd. Rd is a *source* for stores.
//   - Conditional branches: branch to Target if CC satisfies the condition.
//   - Jmp, Call: jump to Target. Jr: jump to Rs1 + Imm. Ret: jump to r31.
//   - Out: emit Rd.
//
// HasImm selects the immediate form for ops with an Rs2/Imm alternative.
type Instr struct {
	Op     Op
	Rd     uint8
	Rs1    uint8
	Rs2    uint8
	Imm    int32
	HasImm bool
	Target int32 // instruction index for direct control transfers
}

var opInfo = [numOps]struct {
	name  string
	class Class
}{
	Nop:  {"nop", ClassNop},
	Add:  {"add", ClassAr},
	Sub:  {"sub", ClassAr},
	Cmp:  {"cmp", ClassAr},
	And:  {"and", ClassLg},
	Or:   {"or", ClassLg},
	Xor:  {"xor", ClassLg},
	Andn: {"andn", ClassLg},
	Orn:  {"orn", ClassLg},
	Xnor: {"xnor", ClassLg},
	Sll:  {"sll", ClassSh},
	Srl:  {"srl", ClassSh},
	Sra:  {"sra", ClassSh},
	Mov:  {"mov", ClassMv},
	Ldi:  {"ldi", ClassMv},
	Mul:  {"mul", ClassMul},
	Div:  {"div", ClassDiv},
	Rem:  {"rem", ClassDiv},
	Ld:   {"ld", ClassLd},
	St:   {"st", ClassSt},
	Beq:  {"beq", ClassBrc},
	Bne:  {"bne", ClassBrc},
	Blt:  {"blt", ClassBrc},
	Ble:  {"ble", ClassBrc},
	Bgt:  {"bgt", ClassBrc},
	Bge:  {"bge", ClassBrc},
	Bltu: {"bltu", ClassBrc},
	Bgeu: {"bgeu", ClassBrc},
	Jmp:  {"jmp", ClassCtl},
	Call: {"call", ClassCtl},
	Ret:  {"ret", ClassCtl},
	Jr:   {"jr", ClassCtl},
	Out:  {"out", ClassSys},
	Halt: {"halt", ClassSys},
}

// ClassOf reports the operation class of op.
func ClassOf(op Op) Class {
	if int(op) >= NumOps {
		return ClassNop
	}
	return opInfo[op].class
}

// Class reports the operation class of the instruction.
func (i Instr) Class() Class { return ClassOf(i.Op) }

func (op Op) String() string {
	if int(op) >= NumOps {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opInfo[op].name
}

var classNames = [numClasses]string{
	ClassNop: "nop",
	ClassAr:  "ar",
	ClassLg:  "lg",
	ClassSh:  "sh",
	ClassMv:  "mv",
	ClassMul: "mul",
	ClassDiv: "div",
	ClassLd:  "ld",
	ClassSt:  "st",
	ClassBrc: "brc",
	ClassCtl: "ctl",
	ClassSys: "sys",
}

func (c Class) String() string {
	if int(c) >= NumClasses {
		return fmt.Sprintf("class(%d)", uint8(c))
	}
	return classNames[c]
}

// Latency reports the execution latency in cycles of op under the paper's
// model: 1 cycle for everything except loads and multiplies (2 cycles) and
// divides (12 cycles).
func Latency(op Op) int {
	switch ClassOf(op) {
	case ClassLd, ClassMul:
		return 2
	case ClassDiv:
		return 12
	default:
		return 1
	}
}

// Writes reports the destination dataflow register of the instruction, or
// -1 if it produces no register value. Writes to R0 are discarded and
// reported as -1. Cmp writes CC; Call writes RA.
func (i Instr) Writes() int {
	switch i.Op {
	case Cmp:
		return CC
	case Call:
		return RA
	case St, Out, Halt, Nop, Jmp, Ret, Jr,
		Beq, Bne, Blt, Ble, Bgt, Bge, Bltu, Bgeu:
		return -1
	default:
		if i.Rd == R0 {
			return -1
		}
		return int(i.Rd)
	}
}

// Reads appends the dataflow registers the instruction reads to dst and
// returns the extended slice. R0 is included (it reads the constant zero;
// the collapsing model treats it as a zero operand). Conditional branches
// read CC. Stores read the stored value register (Rd) plus the address
// registers.
func (i Instr) Reads(dst []uint8) []uint8 {
	switch i.Op {
	case Nop, Ldi, Jmp, Call, Halt:
		return dst
	case Mov:
		return append(dst, i.Rs1)
	case Ret:
		return append(dst, RA)
	case Jr:
		return append(dst, i.Rs1)
	case Beq, Bne, Blt, Ble, Bgt, Bge, Bltu, Bgeu:
		return append(dst, CC)
	case Out:
		return append(dst, i.Rd)
	case St:
		dst = append(dst, i.Rd, i.Rs1)
		if !i.HasImm {
			dst = append(dst, i.Rs2)
		}
		return dst
	default: // ALU, Cmp, Ld
		dst = append(dst, i.Rs1)
		if !i.HasImm {
			dst = append(dst, i.Rs2)
		}
		return dst
	}
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (i Instr) IsCondBranch() bool { return i.Class() == ClassBrc }

// IsControl reports whether the instruction transfers control (conditional
// or otherwise).
func (i Instr) IsControl() bool {
	c := i.Class()
	return c == ClassBrc || c == ClassCtl
}

// RegName returns the assembly name of dataflow register r.
func RegName(r int) string {
	switch r {
	case CC:
		return "cc"
	case SP:
		return "sp"
	case FP:
		return "fp"
	case RA:
		return "ra"
	default:
		return fmt.Sprintf("r%d", r)
	}
}

// String renders the instruction in SV8 assembly syntax.
func (i Instr) String() string {
	op := i.Op.String()
	src2 := func() string {
		if i.HasImm {
			return fmt.Sprintf("%d", i.Imm)
		}
		return RegName(int(i.Rs2))
	}
	switch i.Op {
	case Nop, Halt:
		return op
	case Ret:
		return op
	case Mov:
		return fmt.Sprintf("%s %s, %s", op, RegName(int(i.Rd)), RegName(int(i.Rs1)))
	case Ldi:
		return fmt.Sprintf("%s %s, %d", op, RegName(int(i.Rd)), i.Imm)
	case Cmp:
		return fmt.Sprintf("%s %s, %s", op, RegName(int(i.Rs1)), src2())
	case Ld:
		return fmt.Sprintf("%s %s, [%s+%s]", op, RegName(int(i.Rd)), RegName(int(i.Rs1)), src2())
	case St:
		return fmt.Sprintf("%s %s, [%s+%s]", op, RegName(int(i.Rd)), RegName(int(i.Rs1)), src2())
	case Beq, Bne, Blt, Ble, Bgt, Bge, Bltu, Bgeu, Jmp, Call:
		return fmt.Sprintf("%s %d", op, i.Target)
	case Jr:
		return fmt.Sprintf("%s %s+%d", op, RegName(int(i.Rs1)), i.Imm)
	case Out:
		return fmt.Sprintf("%s %s", op, RegName(int(i.Rd)))
	default:
		return fmt.Sprintf("%s %s, %s, %s", op, RegName(int(i.Rd)), RegName(int(i.Rs1)), src2())
	}
}

// OpByName maps assembly mnemonics to opcodes. It is exported for the
// assembler and tests.
func OpByName(name string) (Op, bool) {
	op, ok := nameToOp[name]
	return op, ok
}

var nameToOp = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); op < numOps; op++ {
		m[opInfo[op].name] = op
	}
	return m
}()
