package isa

import "fmt"

// Program is a loaded SV8 program: code, an initialized data segment, and
// the entry point. Addresses are byte addresses; the data segment is placed
// at DataBase and is word (4-byte) granular.
type Program struct {
	Code     []Instr
	Data     []int32           // initial data segment contents (words)
	DataBase uint32            // byte address of Data[0]
	Entry    int32             // instruction index where execution starts
	Symbols  map[string]int32  // label -> instruction index
	DataSyms map[string]uint32 // data label -> byte address
}

// Validate checks structural invariants: control-transfer targets in range,
// register numbers valid, entry in range. It returns the first violation
// found.
func (p *Program) Validate() error {
	n := int32(len(p.Code))
	if p.Entry < 0 || p.Entry >= n {
		return fmt.Errorf("isa: entry %d out of range [0,%d)", p.Entry, n)
	}
	for pc, in := range p.Code {
		switch in.Op {
		case Beq, Bne, Blt, Ble, Bgt, Bge, Bltu, Bgeu, Jmp, Call:
			if in.Target < 0 || in.Target >= n {
				return fmt.Errorf("isa: pc %d (%s): target %d out of range [0,%d)", pc, in, in.Target, n)
			}
		}
		if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
			return fmt.Errorf("isa: pc %d (%s): register out of range", pc, in)
		}
	}
	return nil
}

// Disassemble renders the whole code segment with instruction indices and
// label annotations, for debugging and the ddasm tool.
func (p *Program) Disassemble() string {
	labels := make(map[int32][]string)
	for name, pc := range p.Symbols {
		labels[pc] = append(labels[pc], name)
	}
	var out []byte
	for pc, in := range p.Code {
		for _, l := range labels[int32(pc)] {
			out = append(out, fmt.Sprintf("%s:\n", l)...)
		}
		out = append(out, fmt.Sprintf("%6d  %s\n", pc, in)...)
	}
	return string(out)
}
