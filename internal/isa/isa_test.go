package isa

import (
	"testing"
	"testing/quick"
)

func TestClassOf(t *testing.T) {
	tests := []struct {
		op   Op
		want Class
	}{
		{Add, ClassAr}, {Sub, ClassAr}, {Cmp, ClassAr},
		{And, ClassLg}, {Or, ClassLg}, {Xor, ClassLg},
		{Andn, ClassLg}, {Orn, ClassLg}, {Xnor, ClassLg},
		{Sll, ClassSh}, {Srl, ClassSh}, {Sra, ClassSh},
		{Mov, ClassMv}, {Ldi, ClassMv},
		{Mul, ClassMul}, {Div, ClassDiv}, {Rem, ClassDiv},
		{Ld, ClassLd}, {St, ClassSt},
		{Beq, ClassBrc}, {Bne, ClassBrc}, {Bltu, ClassBrc}, {Bgeu, ClassBrc},
		{Jmp, ClassCtl}, {Call, ClassCtl}, {Ret, ClassCtl}, {Jr, ClassCtl},
		{Out, ClassSys}, {Halt, ClassSys},
		{Nop, ClassNop},
	}
	for _, tt := range tests {
		if got := ClassOf(tt.op); got != tt.want {
			t.Errorf("ClassOf(%v) = %v, want %v", tt.op, got, tt.want)
		}
	}
}

func TestClassOfOutOfRange(t *testing.T) {
	if got := ClassOf(Op(200)); got != ClassNop {
		t.Errorf("ClassOf(200) = %v, want ClassNop", got)
	}
}

func TestLatency(t *testing.T) {
	tests := []struct {
		op   Op
		want int
	}{
		{Add, 1}, {And, 1}, {Sll, 1}, {Mov, 1}, {Cmp, 1},
		{Beq, 1}, {St, 1}, {Jmp, 1},
		{Ld, 2}, {Mul, 2},
		{Div, 12}, {Rem, 12},
	}
	for _, tt := range tests {
		if got := Latency(tt.op); got != tt.want {
			t.Errorf("Latency(%v) = %d, want %d", tt.op, got, tt.want)
		}
	}
}

func TestWrites(t *testing.T) {
	tests := []struct {
		name string
		in   Instr
		want int
	}{
		{"add", Instr{Op: Add, Rd: 5}, 5},
		{"add to r0 discarded", Instr{Op: Add, Rd: 0}, -1},
		{"cmp writes CC", Instr{Op: Cmp, Rs1: 1}, CC},
		{"call writes RA", Instr{Op: Call}, RA},
		{"store writes nothing", Instr{Op: St, Rd: 5}, -1},
		{"branch writes nothing", Instr{Op: Beq}, -1},
		{"out writes nothing", Instr{Op: Out, Rd: 3}, -1},
		{"ld", Instr{Op: Ld, Rd: 7}, 7},
		{"ldi", Instr{Op: Ldi, Rd: 9}, 9},
		{"ret writes nothing", Instr{Op: Ret}, -1},
		{"jr writes nothing", Instr{Op: Jr, Rs1: 4}, -1},
	}
	for _, tt := range tests {
		if got := tt.in.Writes(); got != tt.want {
			t.Errorf("%s: Writes() = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestReads(t *testing.T) {
	tests := []struct {
		name string
		in   Instr
		want []uint8
	}{
		{"add rr", Instr{Op: Add, Rd: 1, Rs1: 2, Rs2: 3}, []uint8{2, 3}},
		{"add ri", Instr{Op: Add, Rd: 1, Rs1: 2, Imm: 7, HasImm: true}, []uint8{2}},
		{"ldi no reads", Instr{Op: Ldi, Rd: 1, Imm: 7, HasImm: true}, nil},
		{"mov", Instr{Op: Mov, Rd: 1, Rs1: 2}, []uint8{2}},
		{"branch reads CC", Instr{Op: Bne}, []uint8{CC}},
		{"ret reads RA", Instr{Op: Ret}, []uint8{RA}},
		{"jr reads rs1", Instr{Op: Jr, Rs1: 6}, []uint8{6}},
		{"store reads value+base+index", Instr{Op: St, Rd: 4, Rs1: 5, Rs2: 6}, []uint8{4, 5, 6}},
		{"store imm reads value+base", Instr{Op: St, Rd: 4, Rs1: 5, Imm: 8, HasImm: true}, []uint8{4, 5}},
		{"ld rr", Instr{Op: Ld, Rd: 4, Rs1: 5, Rs2: 6}, []uint8{5, 6}},
		{"out reads rd", Instr{Op: Out, Rd: 9}, []uint8{9}},
		{"call no reads", Instr{Op: Call}, nil},
		{"jmp no reads", Instr{Op: Jmp}, nil},
	}
	for _, tt := range tests {
		got := tt.in.Reads(nil)
		if len(got) != len(tt.want) {
			t.Errorf("%s: Reads() = %v, want %v", tt.name, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("%s: Reads() = %v, want %v", tt.name, got, tt.want)
				break
			}
		}
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		got, ok := OpByName(op.String())
		if !ok {
			t.Fatalf("OpByName(%q) not found", op.String())
		}
		if got != op {
			t.Errorf("OpByName(%q) = %v, want %v", op.String(), got, op)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName(bogus) unexpectedly found")
	}
}

func TestIsCondBranchAndIsControl(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		in := Instr{Op: op}
		wantCond := ClassOf(op) == ClassBrc
		if got := in.IsCondBranch(); got != wantCond {
			t.Errorf("%v: IsCondBranch = %v, want %v", op, got, wantCond)
		}
		wantCtl := wantCond || ClassOf(op) == ClassCtl
		if got := in.IsControl(); got != wantCtl {
			t.Errorf("%v: IsControl = %v, want %v", op, got, wantCtl)
		}
	}
}

func TestRegName(t *testing.T) {
	tests := []struct {
		r    int
		want string
	}{{0, "r0"}, {7, "r7"}, {SP, "sp"}, {FP, "fp"}, {RA, "ra"}, {CC, "cc"}}
	for _, tt := range tests {
		if got := RegName(tt.r); got != tt.want {
			t.Errorf("RegName(%d) = %q, want %q", tt.r, got, tt.want)
		}
	}
}

func TestInstrString(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: Add, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: Add, Rd: 1, Rs1: 2, Imm: -4, HasImm: true}, "add r1, r2, -4"},
		{Instr{Op: Ld, Rd: 4, Rs1: SP, Imm: 8, HasImm: true}, "ld r4, [sp+8]"},
		{Instr{Op: St, Rd: 4, Rs1: 5, Rs2: 6}, "st r4, [r5+r6]"},
		{Instr{Op: Cmp, Rs1: 2, Imm: 0, HasImm: true}, "cmp r2, 0"},
		{Instr{Op: Beq, Target: 12}, "beq 12"},
		{Instr{Op: Ldi, Rd: 3, Imm: 100, HasImm: true}, "ldi r3, 100"},
		{Instr{Op: Mov, Rd: 3, Rs1: 9}, "mov r3, r9"},
		{Instr{Op: Halt}, "halt"},
		{Instr{Op: Ret}, "ret"},
		{Instr{Op: Out, Rd: 1}, "out r1"},
		{Instr{Op: Jr, Rs1: 8, Imm: 2, HasImm: true}, "jr r8+2"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

// Property: every instruction's Writes target is never R0 and Reads never
// returns more than 3 registers.
func TestReadsWritesBounds(t *testing.T) {
	f := func(op8, rd, rs1, rs2 uint8, imm int32, hasImm bool) bool {
		in := Instr{
			Op: Op(op8 % uint8(NumOps)), Rd: rd % 32, Rs1: rs1 % 32, Rs2: rs2 % 32,
			Imm: imm, HasImm: hasImm,
		}
		w := in.Writes()
		if w == R0 {
			return false
		}
		if w >= NumRegs {
			return false
		}
		reads := in.Reads(nil)
		if len(reads) > 3 {
			return false
		}
		for _, r := range reads {
			if int(r) >= NumRegs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProgramValidate(t *testing.T) {
	good := &Program{Code: []Instr{{Op: Jmp, Target: 0}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	tests := []struct {
		name string
		p    *Program
	}{
		{"entry out of range", &Program{Code: []Instr{{Op: Halt}}, Entry: 5}},
		{"branch target out of range", &Program{Code: []Instr{{Op: Beq, Target: 9}}}},
		{"negative target", &Program{Code: []Instr{{Op: Jmp, Target: -1}}}},
		{"bad register", &Program{Code: []Instr{{Op: Add, Rd: 40}}}},
	}
	for _, tt := range tests {
		if err := tt.p.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tt.name)
		}
	}
}

func TestDisassembleContainsLabels(t *testing.T) {
	p := &Program{
		Code:    []Instr{{Op: Ldi, Rd: 1, Imm: 5, HasImm: true}, {Op: Halt}},
		Symbols: map[string]int32{"main": 0},
	}
	d := p.Disassemble()
	if want := "main:"; !contains(d, want) {
		t.Errorf("Disassemble missing %q:\n%s", want, d)
	}
	if want := "ldi r1, 5"; !contains(d, want) {
		t.Errorf("Disassemble missing %q:\n%s", want, d)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
