// Package stride implements the paper's load-address predictor: a
// 4096-entry direct-mapped table indexed by the low 14 bits (the paper's
// figure; with 4-byte instructions the low 12 entry-selecting bits) of the
// load's instruction address, running the *two-delta* stride algorithm of
// Eickemeyer & Vassiliadis, extended with a 2-bit saturating confidence
// counter per entry: +1 on a correct address prediction, -2 on a wrong one,
// and a predicted address is used for speculative issue only when the
// counter value is greater than 1.
//
// Two-delta stride prediction keeps the last address, the last delta, and a
// candidate "stride" that is only replaced when the same new delta is seen
// twice in a row; this filters the spurious deltas that a single
// interleaved irregular access would otherwise inject.
package stride

// Table parameters from the paper (Section 3).
const (
	DefaultLogEntries = 12 // 4096-entry direct-mapped table
	ConfidenceMax     = 3  // 2-bit saturating counter
	ConfidenceUse     = 2  // "used only when the counter value is greater than 1"
)

type entry struct {
	tag        uint32 // full PC, for stats only (direct-mapped: no tag match required)
	lastAddr   uint32
	stride     int32 // confirmed stride used for prediction
	lastDelta  int32 // most recent delta (candidate stride)
	confidence uint8
	valid      bool
}

// Policy parameterizes the confidence mechanism. The paper notes that
// "possible variations are currently being explored to determine even more
// accurate confidence measurements"; these knobs enable that exploration
// (see BenchmarkExtensionConfidenceSweep).
type Policy struct {
	Reward    uint8 // confidence increment on a correct prediction
	Penalty   uint8 // confidence decrement on a wrong prediction
	Threshold uint8 // predictions are used when confidence >= Threshold
	Max       uint8 // saturation ceiling
}

// PaperPolicy is the paper's scheme: a 2-bit counter, +1 on correct, -2 on
// wrong, used when the counter value is greater than 1.
func PaperPolicy() Policy {
	return Policy{Reward: 1, Penalty: 2, Threshold: ConfidenceUse, Max: ConfidenceMax}
}

// Predictor is the two-delta stride address predictor with confidence.
// The zero value is not usable; create with New.
type Predictor struct {
	entries []entry
	mask    uint32
	policy  Policy
}

// New creates a predictor with 2^logEntries entries and the paper's
// confidence policy.
func New(logEntries uint) *Predictor { return NewWithPolicy(logEntries, PaperPolicy()) }

// NewWithPolicy creates a predictor with a custom confidence policy.
func NewWithPolicy(logEntries uint, policy Policy) *Predictor {
	n := 1 << logEntries
	return &Predictor{entries: make([]entry, n), mask: uint32(n - 1), policy: policy}
}

// NewPaper returns the paper's 4096-entry configuration.
func NewPaper() *Predictor { return New(DefaultLogEntries) }

// Prediction is the outcome of a table lookup.
type Prediction struct {
	Addr      uint32 // predicted effective address
	Confident bool   // counter > 1: the prediction may be used for speculative issue
	Valid     bool   // the entry has an address history at all
}

// Lookup returns the predicted address for the load at pc. It does not
// modify the table.
func (p *Predictor) Lookup(pc uint32) Prediction {
	e := &p.entries[pc&p.mask]
	if !e.valid {
		return Prediction{}
	}
	return Prediction{
		Addr:      uint32(int32(e.lastAddr) + e.stride),
		Confident: e.confidence >= p.policy.Threshold,
		Valid:     true,
	}
}

// Update trains the table with the actual effective address of the load at
// pc. All loads update the table, whether or not a prediction was used
// (Section 3: "All loads update the table state"). It returns whether the
// prediction the table would have made was correct, which the caller uses
// for statistics.
func (p *Predictor) Update(pc uint32, addr uint32) (wasCorrect bool) {
	e := &p.entries[pc&p.mask]
	if !e.valid {
		*e = entry{tag: pc, lastAddr: addr, valid: true}
		return false
	}
	predicted := uint32(int32(e.lastAddr) + e.stride)
	wasCorrect = predicted == addr

	// Confidence: +Reward on correct, -Penalty on wrong, saturating at
	// [0, Max] (the paper: +1, -2, max 3).
	if wasCorrect {
		if e.confidence+p.policy.Reward <= p.policy.Max {
			e.confidence += p.policy.Reward
		} else {
			e.confidence = p.policy.Max
		}
	} else {
		if e.confidence >= p.policy.Penalty {
			e.confidence -= p.policy.Penalty
		} else {
			e.confidence = 0
		}
	}

	// Two-delta stride update: adopt a new stride only when the same delta
	// repeats.
	delta := int32(addr - e.lastAddr)
	if delta == e.lastDelta {
		e.stride = delta
	}
	e.lastDelta = delta
	e.lastAddr = addr
	e.tag = pc
	return wasCorrect
}

// Reset clears the table.
func (p *Predictor) Reset() {
	for i := range p.entries {
		p.entries[i] = entry{}
	}
}

// Len reports the number of table entries.
func (p *Predictor) Len() int { return len(p.entries) }
