package stride

import (
	"fmt"
	"testing"
)

// Table-driven edge tests for the confidence counter and the two-delta
// stride rule. Each scenario walks an explicit event sequence through one
// predictor entry and pins the externally observable state (prediction
// correctness and the confident bit) after every single update, so a
// regression in the +Reward/−Penalty arithmetic, the saturation bounds, or
// the >1 use-threshold shows up at the exact step where it diverges.

// confStep is one Update call and the expected observable state after it.
type confStep struct {
	addr          uint32
	wantCorrect   bool // Update's report for this access
	wantConfident bool // Lookup().Confident after the update
}

func TestConfidenceTrajectoryTable(t *testing.T) {
	const pc = 0x4000

	cases := []struct {
		name   string
		policy Policy
		steps  []confStep
	}{
		{
			// Paper policy, constant address: counter climbs 0,1,2,3 and
			// saturates; confident exactly once the counter exceeds 1.
			name:   "paper/climb-and-saturate",
			policy: PaperPolicy(),
			steps: []confStep{
				{addr: 100},                    // cold init, no prediction
				{addr: 100, wantCorrect: true}, // conf 1: correct but below threshold
				{addr: 100, wantCorrect: true, wantConfident: true}, // conf 2: crosses ">1"
				{addr: 100, wantCorrect: true, wantConfident: true}, // conf 3: saturated
				{addr: 100, wantCorrect: true, wantConfident: true}, // conf stays 3 (no overflow past Max)
			},
		},
		{
			// The −2 penalty is asymmetric: one miss undoes two hits, and a
			// second miss floors the counter at zero without wrapping.
			name:   "paper/penalty-and-floor",
			policy: PaperPolicy(),
			steps: []confStep{
				{addr: 100},
				{addr: 100, wantCorrect: true}, // conf 1
				{addr: 100, wantCorrect: true, wantConfident: true}, // conf 2
				{addr: 100, wantCorrect: true, wantConfident: true}, // conf 3
				{addr: 500}, // miss: 3-2 = 1, loses confidence
				// Stride is still 0 (the 400 delta appeared once, so
				// two-delta keeps it as candidate only) and lastAddr is
				// 500: the constant address hits, conf 1+1 = 2, confident.
				{addr: 500, wantCorrect: true, wantConfident: true},
			},
		},
		{
			// From the floor, re-earning use-confidence takes two hits.
			name:   "paper/recovery-from-floor",
			policy: PaperPolicy(),
			steps: []confStep{
				{addr: 100},
				{addr: 200},                    // miss (predicted 100): conf 0-2 floors at 0
				{addr: 999},                    // miss: conf stays 0 (no underflow wrap); deltas 100,799 never repeat
				{addr: 999, wantCorrect: true}, // conf 1 (stride 0 predicts 999)
				{addr: 999, wantCorrect: true, wantConfident: true}, // conf 2
			},
		},
		{
			// Threshold 0 means every valid entry is usable immediately.
			name:   "threshold-zero/always-confident",
			policy: Policy{Reward: 1, Penalty: 2, Threshold: 0, Max: 3},
			steps: []confStep{
				{addr: 100, wantConfident: true},
				{addr: 999, wantConfident: true}, // miss, conf 0, still >= threshold
			},
		},
		{
			// Reward larger than Max-conf saturates rather than overflowing:
			// Reward 3 from conf 1 must clamp to Max 3, not wrap the uint8.
			name:   "big-reward/saturates",
			policy: Policy{Reward: 3, Penalty: 1, Threshold: 2, Max: 3},
			steps: []confStep{
				{addr: 100},
				{addr: 100, wantCorrect: true, wantConfident: true}, // conf 0+3 = 3
				{addr: 100, wantCorrect: true, wantConfident: true}, // clamp at 3
				{addr: 900, wantConfident: true}, // miss: 3-1 = 2, still confident
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewWithPolicy(6, tc.policy)
			for i, s := range tc.steps {
				got := p.Update(pc, s.addr)
				if got != s.wantCorrect {
					t.Fatalf("step %d (addr %d): Update correct = %v, want %v", i, s.addr, got, s.wantCorrect)
				}
				if pred := p.Lookup(pc); pred.Confident != s.wantConfident {
					t.Fatalf("step %d (addr %d): Confident = %v, want %v", i, s.addr, pred.Confident, s.wantConfident)
				}
			}
		})
	}
}

// TestUseThresholdIsStrictlyGreaterThanOne pins the paper's wording: the
// predicted address is used "only when the counter value is greater than
// 1". A counter of exactly 1 — one net correct prediction — must NOT be
// confident, and a counter of 2 must be.
func TestUseThresholdIsStrictlyGreaterThanOne(t *testing.T) {
	p := NewPaper()
	const pc = 0x1234
	p.Update(pc, 64) // init
	if p.Update(pc, 64) != true {
		t.Fatal("constant address not predicted after init")
	}
	if p.Lookup(pc).Confident {
		t.Fatal("counter value 1 must not clear the >1 use threshold")
	}
	p.Update(pc, 64)
	if !p.Lookup(pc).Confident {
		t.Fatal("counter value 2 must clear the >1 use threshold")
	}
}

// twoDeltaCase drives one entry through a delta sequence and checks the
// stride the table ends up predicting with (lookup address minus the last
// trained address).
func TestTwoDeltaCandidateFilterTable(t *testing.T) {
	cases := []struct {
		name       string
		deltas     []int32
		wantStride int32
	}{
		{"repeat-adopts", []int32{4, 4}, 4},
		{"single-delta-is-only-candidate", []int32{4}, 0},
		{"change-needs-confirmation", []int32{4, 4, 8}, 4},
		{"confirmed-change-adopts", []int32{4, 4, 8, 8}, 8},
		{"alternating-never-adopts", []int32{4, 8, 4, 8, 4, 8}, 0},
		{"glitch-is-filtered", []int32{4, 4, 12, 4, 4}, 4},
		{"negative-stride-adopts", []int32{-8, -8}, -8},
		{"sign-flip-needs-two", []int32{8, 8, -8}, 8},
		{"sign-flip-confirmed", []int32{8, 8, -8, -8}, -8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPaper()
			const pc = 0x40
			addr := uint32(1 << 20)
			p.Update(pc, addr) // init
			for _, d := range tc.deltas {
				addr = uint32(int32(addr) + d)
				p.Update(pc, addr)
			}
			pred := p.Lookup(pc)
			if !pred.Valid {
				t.Fatal("entry not valid after training")
			}
			if got := int32(pred.Addr - addr); got != tc.wantStride {
				t.Fatalf("deltas %v: predicting stride %d, want %d", tc.deltas, got, tc.wantStride)
			}
		})
	}
}

// TestAliasEvictionTable exercises the direct-mapped conflict cases in the
// paper's 4096-entry table: PCs 2^12 apart share an entry and destroy each
// other's history, while PCs in distinct sets train independently.
func TestAliasEvictionTable(t *testing.T) {
	const n = 1 << DefaultLogEntries

	cases := []struct {
		name    string
		pcA     uint32
		pcB     uint32
		collide bool
	}{
		{"same-set-wraparound", 0x100, 0x100 + n, true},
		{"same-set-double-wrap", 0x100, 0x100 + 2*n, true},
		{"adjacent-sets-independent", 0x100, 0x101, false},
		{"distant-sets-independent", 0x100, 0x100 + n/2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPaper()
			// Train pcA to a confident +4 stride.
			addr := uint32(0x1000)
			p.Update(tc.pcA, addr)
			for i := 0; i < 6; i++ {
				addr += 4
				p.Update(tc.pcA, addr)
			}
			if pred := p.Lookup(tc.pcA); !pred.Confident || pred.Addr != addr+4 {
				t.Fatalf("pcA not trained: %+v (want addr %d)", pred, addr+4)
			}

			// One interloper access from pcB with unrelated addresses.
			p.Update(tc.pcB, 0x900000)
			p.Update(tc.pcB, 0x900100)

			pred := p.Lookup(tc.pcA)
			if tc.collide {
				// The shared entry now holds pcB's history: pcA's next
				// access is mispredicted and pays the confidence penalty.
				if pred.Addr == addr+4 {
					t.Fatal("aliased entry still predicts pcA's stride after eviction")
				}
				if p.Update(tc.pcA, addr+4) {
					t.Fatal("post-eviction access must be a misprediction")
				}
			} else {
				// Distinct sets: pcA's stream is untouched and keeps
				// predicting correctly.
				if !pred.Confident || pred.Addr != addr+4 {
					t.Fatalf("non-aliasing pcB disturbed pcA's entry: %+v", pred)
				}
				if !p.Update(tc.pcA, addr+4) {
					t.Fatal("pcA's prediction must survive a non-aliasing access")
				}
			}
		})
	}
}

// TestAliasIndexBits documents the indexing function: the entry index is
// the PC's low DefaultLogEntries bits, so exactly PCs congruent mod 2^12
// collide in the paper configuration.
func TestAliasIndexBits(t *testing.T) {
	p := NewPaper()
	if p.Len() != 1<<DefaultLogEntries {
		t.Fatalf("paper table has %d entries, want %d", p.Len(), 1<<DefaultLogEntries)
	}
	for _, pc := range []uint32{0, 1, 4095, 4096, 1 << 20} {
		t.Run(fmt.Sprintf("pc%d", pc), func(t *testing.T) {
			p.Reset()
			p.Update(pc, 8)
			alias := pc + uint32(p.Len())
			if !p.Lookup(alias).Valid {
				t.Fatalf("pc %d and pc %d must share an entry", pc, alias)
			}
			if p.Lookup(pc+1).Valid && p.Len() > 1 {
				t.Fatalf("pc %d must not share an entry with pc %d", pc, pc+1)
			}
		})
	}
}
