package stride

import (
	"testing"
	"testing/quick"
)

func TestColdTableDoesNotPredict(t *testing.T) {
	p := New(4)
	pred := p.Lookup(0x100)
	if pred.Valid || pred.Confident {
		t.Errorf("cold lookup = %+v, want invalid", pred)
	}
}

func TestConstantAddressPrediction(t *testing.T) {
	// A load hitting the same address repeatedly has stride 0; after enough
	// correct predictions the confidence exceeds the use threshold.
	p := New(4)
	pc, addr := uint32(0x40), uint32(0x2000)
	for i := 0; i < 4; i++ {
		p.Update(pc, addr)
	}
	pred := p.Lookup(pc)
	if !pred.Valid || !pred.Confident || pred.Addr != addr {
		t.Errorf("constant-address prediction = %+v, want confident %#x", pred, addr)
	}
}

func TestStridedSequencePrediction(t *testing.T) {
	p := New(4)
	pc := uint32(0x44)
	// Addresses 0, 16, 32, 48, ...: stride 16.
	for i := uint32(0); i < 6; i++ {
		p.Update(pc, 0x1000+16*i)
	}
	pred := p.Lookup(pc)
	if !pred.Confident {
		t.Fatalf("strided sequence not confident after 6 updates: %+v", pred)
	}
	if pred.Addr != 0x1000+16*6 {
		t.Errorf("predicted %#x, want %#x", pred.Addr, 0x1000+16*6)
	}
}

func TestNegativeStride(t *testing.T) {
	p := New(4)
	pc := uint32(0x48)
	for i := 0; i < 6; i++ {
		p.Update(pc, uint32(0x8000-8*i))
	}
	pred := p.Lookup(pc)
	if !pred.Confident || pred.Addr != uint32(0x8000-8*6) {
		t.Errorf("negative stride prediction = %+v, want %#x", pred, uint32(0x8000-8*6))
	}
}

func TestTwoDeltaFiltersGlitch(t *testing.T) {
	// Two-delta: a single irregular address must not disturb the learned
	// stride. Sequence: 0,4,8,12, 1000, 16, 20, 24 ... after the glitch the
	// predictor should quickly resume stride-4 prediction because the
	// confirmed stride is only replaced when a new delta repeats.
	p := New(4)
	pc := uint32(0x4c)
	addrs := []uint32{0, 4, 8, 12, 1000, 16, 20, 24, 28}
	for _, a := range addrs {
		p.Update(pc, a)
	}
	pred := p.Lookup(pc)
	if pred.Addr != 32 {
		t.Errorf("after glitch predicted %d, want 32 (stride 4 retained)", pred.Addr)
	}
}

func TestConfidencePenaltyIsAsymmetric(t *testing.T) {
	// +1 on correct, -2 on wrong: after saturation (3), one wrong drops to
	// 1 which is below the use threshold.
	p := New(4)
	pc := uint32(0x50)
	for i := uint32(0); i < 8; i++ {
		p.Update(pc, 0x100+4*i) // train to saturation
	}
	if !p.Lookup(pc).Confident {
		t.Fatal("not confident after training")
	}
	p.Update(pc, 0x9999_0000) // one wrong prediction: 3 - 2 = 1
	if p.Lookup(pc).Confident {
		t.Error("still confident after a mispredict; -2 penalty not applied")
	}
}

func TestConfidenceFloorsAtZero(t *testing.T) {
	p := New(4)
	pc := uint32(0x54)
	addrs := []uint32{0, 5000, 3, 77777, 13} // chaos: every prediction wrong
	for _, a := range addrs {
		p.Update(pc, a)
	}
	pred := p.Lookup(pc)
	if pred.Confident {
		t.Error("chaotic address stream should never be confident")
	}
}

func TestUpdateReportsCorrectness(t *testing.T) {
	p := New(4)
	pc := uint32(0x58)
	p.Update(pc, 100) // cold: not correct
	// stride still 0, so prediction after first update is lastAddr+0 = 100.
	if !p.Update(pc, 100) {
		t.Error("second update at same address should report correct")
	}
	if p.Update(pc, 200) {
		t.Error("jump should report incorrect")
	}
}

func TestDirectMappedAliasing(t *testing.T) {
	p := New(2) // 4 entries; pcs 0 and 4 alias
	for i := uint32(0); i < 6; i++ {
		p.Update(0, 0x100+4*i)
	}
	if !p.Lookup(0).Confident {
		t.Fatal("training failed")
	}
	// The aliasing pc sees the same entry.
	pred := p.Lookup(4)
	if !pred.Valid {
		t.Error("aliased pc should see the shared entry")
	}
	// An aliased store of a different pattern destroys the entry for both.
	p.Update(4, 0xdead0000)
	if p.Lookup(0).Confident {
		t.Error("alias interference should have dropped confidence")
	}
}

func TestPaperConfiguration(t *testing.T) {
	p := NewPaper()
	if p.Len() != 4096 {
		t.Errorf("paper table = %d entries, want 4096", p.Len())
	}
}

func TestReset(t *testing.T) {
	p := New(4)
	for i := uint32(0); i < 6; i++ {
		p.Update(0, 4*i)
	}
	p.Reset()
	if p.Lookup(0).Valid {
		t.Error("entry valid after Reset")
	}
}

// Property: for any pure strided stream the predictor becomes and stays
// confident and correct after a warmup of 6 accesses (two to learn the
// stride, then enough correct predictions to cross the confidence
// threshold).
func TestStridedStreamsConvergeQuick(t *testing.T) {
	f := func(pc uint32, base uint32, strideSeed int16) bool {
		stride := int32(strideSeed) &^ 3 // word-aligned stride
		p := New(8)
		addr := base &^ 3
		for i := 0; i < 6; i++ {
			p.Update(pc, addr)
			addr = uint32(int32(addr) + stride)
		}
		for i := 0; i < 8; i++ {
			pred := p.Lookup(pc)
			if !pred.Confident || pred.Addr != addr {
				return false
			}
			p.Update(pc, addr)
			addr = uint32(int32(addr) + stride)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: confidence is always within [0, ConfidenceMax].
func TestConfidenceBoundsQuick(t *testing.T) {
	p := New(6)
	f := func(pc uint32, addr uint32) bool {
		p.Update(pc, addr&^3)
		e := &p.entries[pc&p.mask]
		return e.confidence <= ConfidenceMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPointerChaseIsUnpredictable(t *testing.T) {
	// Pseudo-random addresses (a hash chain) model pointer chasing: the
	// predictor should rarely be confident, reproducing the paper's Table 3
	// observation that pointer-chasing loads are mostly "not predicted".
	p := NewPaper()
	pc := uint32(0x60)
	addr := uint32(12345)
	confident := 0
	n := 1000
	for i := 0; i < n; i++ {
		if p.Lookup(pc).Confident {
			confident++
		}
		p.Update(pc, addr)
		addr = (addr*1664525 + 1013904223) &^ 3
	}
	if frac := float64(confident) / float64(n); frac > 0.05 {
		t.Errorf("confident on %.1f%% of chaotic accesses, want < 5%%", 100*frac)
	}
}

func TestPolicyThresholdZeroAlwaysConfident(t *testing.T) {
	p := NewWithPolicy(4, Policy{Reward: 1, Penalty: 2, Threshold: 0, Max: 3})
	p.Update(0, 0x100)
	if !p.Lookup(0).Confident {
		t.Error("threshold-0 policy should be confident after one update")
	}
}

func TestPolicyHighThresholdIsConservative(t *testing.T) {
	// After 5 strided updates (two spent learning the stride, three correct
	// predictions) the paper policy reaches confidence 2 — usable — while a
	// policy requiring saturation (threshold 3) is still holding back.
	strict := NewWithPolicy(4, Policy{Reward: 1, Penalty: 3, Threshold: 3, Max: 3})
	paper := New(4)
	pc := uint32(4)
	for i := uint32(0); i < 5; i++ {
		strict.Update(pc, 0x100+4*i)
		paper.Update(pc, 0x100+4*i)
	}
	if !paper.Lookup(pc).Confident {
		t.Fatal("paper policy should be confident after 5 updates")
	}
	if strict.Lookup(pc).Confident {
		t.Error("strict policy confident too early")
	}
	// One more correct prediction saturates it.
	strict.Update(pc, 0x114)
	if !strict.Lookup(pc).Confident {
		t.Error("strict policy never became confident")
	}
}

func TestPolicyRewardSaturatesAtMax(t *testing.T) {
	p := NewWithPolicy(4, Policy{Reward: 2, Penalty: 1, Threshold: 2, Max: 3})
	pc := uint32(8)
	for i := uint32(0); i < 10; i++ {
		p.Update(pc, 0x200+4*i)
	}
	e := &p.entries[pc&p.mask]
	if e.confidence > 3 {
		t.Errorf("confidence %d exceeded Max 3", e.confidence)
	}
	// One mispredict with penalty 1 keeps it above threshold: a more
	// forgiving policy than the paper's.
	p.Update(pc, 0xdead0000)
	if !p.Lookup(pc).Confident {
		t.Error("penalty-1 policy should stay confident after one miss")
	}
}
