package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/trace"
	"repro/internal/watchdog"
)

// TestClassify pins the error taxonomy: cancellations stop, corruption and
// invariant violations are permanent, injected faults and unknowns are
// transient.
func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, Transient},
		{"canceled", context.Canceled, Canceled},
		{"deadline", context.DeadlineExceeded, Canceled},
		{"wrapped cancel", fmt.Errorf("cell: %w", context.Canceled), Canceled},
		{"corrupt trace", fmt.Errorf("read: %w", trace.ErrCorruptRecord), Permanent},
		{"bad magic", trace.ErrBadMagic, Permanent},
		{"invariant", &core.InvariantError{Invariant: "issue-width", Cycle: 3}, Permanent},
		{"wrapped invariant", fmt.Errorf("run: %w", &core.InvariantError{}), Permanent},
		{"stalled", fmt.Errorf("cell: %w", watchdog.ErrStalled), Permanent},
		{"injected fault", faultinject.ErrInjected, Transient},
		{"unknown", errors.New("mystery"), Transient},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestTransientRetriedToSuccess: a fault that heals on the third attempt is
// retried twice with exponentially growing, jitter-bounded delays.
func TestTransientRetriedToSuccess(t *testing.T) {
	var delays []time.Duration
	p := Policy{
		MaxAttempts: 5,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    time.Second,
		Multiplier:  2,
		Jitter:      0.25,
		Seed:        42,
		Sleep: func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	}
	calls := 0
	attempts, err := Do(context.Background(), p, func(attempt int) error {
		calls++
		if attempt != calls {
			t.Fatalf("attempt number %d on call %d", attempt, calls)
		}
		if attempt < 3 {
			return faultinject.ErrInjected
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if attempts != 3 || calls != 3 {
		t.Fatalf("attempts = %d, calls = %d; want 3, 3", attempts, calls)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}
	// Each delay must fall within ±Jitter of the nominal backoff.
	for i, nominal := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond} {
		lo := time.Duration(float64(nominal) * 0.75)
		hi := time.Duration(float64(nominal) * 1.25)
		if delays[i] < lo || delays[i] > hi {
			t.Errorf("delay %d = %v, want within [%v, %v]", i, delays[i], lo, hi)
		}
	}
}

// TestJitterIsDeterministicUnderSeed: pinned seeds reproduce delays exactly;
// different seeds diverge.
func TestJitterIsDeterministicUnderSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var delays []time.Duration
		p := Policy{
			MaxAttempts: 4,
			BaseDelay:   80 * time.Millisecond,
			Seed:        seed,
			Sleep: func(ctx context.Context, d time.Duration) error {
				delays = append(delays, d)
				return nil
			},
		}
		Do(context.Background(), p, func(int) error { return errors.New("always") })
		return delays
	}
	a, b := run(7), run(7)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("delay counts %d, %d; want 3, 3", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

// TestBackoffCapsAtMaxDelay: with jitter disabled the delays are exactly
// base, base×m, …, capped at MaxDelay.
func TestBackoffCapsAtMaxDelay(t *testing.T) {
	var delays []time.Duration
	p := Policy{
		MaxAttempts: 6,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Multiplier:  2,
		Jitter:      -1, // disable
		Sleep: func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	}
	Do(context.Background(), p, func(int) error { return errors.New("always") })
	want := []time.Duration{10, 20, 40, 40, 40}
	for i := range want {
		want[i] *= time.Millisecond
	}
	if len(delays) != len(want) {
		t.Fatalf("slept %d times, want %d", len(delays), len(want))
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Errorf("delay %d = %v, want %v", i, delays[i], want[i])
		}
	}
}

// TestPermanentFailsFast: corruption and invariant errors get exactly one
// attempt, no sleeping.
func TestPermanentFailsFast(t *testing.T) {
	for _, perm := range []error{
		fmt.Errorf("trace: %w", trace.ErrTruncated),
		fmt.Errorf("run: %w", &core.InvariantError{Invariant: "r", Cycle: 1}),
		fmt.Errorf("cell: %w", watchdog.ErrStalled),
	} {
		slept := 0
		p := Policy{
			MaxAttempts: 5,
			Sleep: func(ctx context.Context, d time.Duration) error {
				slept++
				return nil
			},
		}
		attempts, err := Do(context.Background(), p, func(int) error { return perm })
		if !errors.Is(err, perm) && err.Error() != perm.Error() {
			t.Fatalf("err = %v, want %v", err, perm)
		}
		if attempts != 1 || slept != 0 {
			t.Fatalf("%v: attempts = %d, sleeps = %d; want 1, 0", perm, attempts, slept)
		}
	}
}

// TestCanceledStopsImmediately: a context-cancellation failure from the
// operation itself is never retried.
func TestCanceledStopsImmediately(t *testing.T) {
	p := Policy{MaxAttempts: 5, Sleep: func(context.Context, time.Duration) error {
		t.Fatal("slept after cancellation")
		return nil
	}}
	attempts, err := Do(context.Background(), p, func(int) error {
		return fmt.Errorf("cell: %w", context.Canceled)
	})
	if attempts != 1 || !errors.Is(err, context.Canceled) {
		t.Fatalf("attempts = %d, err = %v; want 1 attempt, context.Canceled", attempts, err)
	}
}

// TestExhaustionReturnsLastError: running out of attempts surfaces the final
// attempt's error.
func TestExhaustionReturnsLastError(t *testing.T) {
	p := Policy{MaxAttempts: 3, Sleep: func(context.Context, time.Duration) error { return nil }}
	attempts, err := Do(context.Background(), p, func(attempt int) error {
		return fmt.Errorf("attempt %d failed", attempt)
	})
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if err == nil || err.Error() != "attempt 3 failed" {
		t.Fatalf("err = %v, want the last attempt's error", err)
	}
}

// TestSleepCancellationJoinsErrors: cancellation during backoff reports
// both the cancellation and the error the loop was retrying.
func TestSleepCancellationJoinsErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("flaky")
	p := Policy{MaxAttempts: 5, Sleep: func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}}
	attempts, err := Do(ctx, p, func(int) error { return boom })
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
	if !errors.Is(err, context.Canceled) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want both context.Canceled and the retried error", err)
	}
}

// TestZeroPolicyMeansOneAttempt: the zero value is a plain single attempt.
func TestZeroPolicyMeansOneAttempt(t *testing.T) {
	calls := 0
	attempts, err := Do(context.Background(), Policy{}, func(int) error {
		calls++
		return errors.New("nope")
	})
	if attempts != 1 || calls != 1 || err == nil {
		t.Fatalf("attempts = %d, calls = %d, err = %v; want single failing attempt", attempts, calls, err)
	}
}

// TestClassifyOverride: a custom classifier replaces the default wholesale.
func TestClassifyOverride(t *testing.T) {
	p := Policy{
		MaxAttempts: 4,
		Classify:    func(error) Class { return Permanent },
		Sleep: func(context.Context, time.Duration) error {
			t.Fatal("slept despite Permanent classification")
			return nil
		},
	}
	attempts, _ := Do(context.Background(), p, func(int) error {
		return faultinject.ErrInjected // default classifier would retry this
	})
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
}

// TestCancelDuringFirstBackoffReturnsImmediately: a cancellation that lands
// mid-sleep during the first backoff must abort the wait at once — the loop
// may not finish a multi-second sleep, and no further attempt may run.
func TestCancelDuringFirstBackoffReturnsImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("transient wobble")
	calls := 0
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	attempts, err := Do(ctx, Policy{MaxAttempts: 5, BaseDelay: 30 * time.Second}, func(int) error {
		calls++
		return boom
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Do took %v; cancellation mid-backoff must return immediately", elapsed)
	}
	if attempts != 1 || calls != 1 {
		t.Fatalf("attempts = %d, calls = %d; want exactly one attempt", attempts, calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the retried error joined in", err)
	}
}

// TestSleepOverrideCannotOutliveCancellation: a custom Sleep that ignores
// the context (returns nil after cancellation) must not keep the retry loop
// alive — Do re-checks the context after every wait.
func TestSleepOverrideCannotOutliveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("flaky")
	p := Policy{MaxAttempts: 5, Sleep: func(context.Context, time.Duration) error {
		cancel() // cancellation lands mid-sleep, and this Sleep ignores it
		return nil
	}}
	attempts, err := Do(ctx, p, func(int) error { return boom })
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no attempt after cancellation)", attempts)
	}
	if !errors.Is(err, context.Canceled) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want both context.Canceled and the retried error", err)
	}
}
