// Package retry implements bounded retry with exponential backoff and
// jitter for transient simulation-cell failures, classified through the
// pipeline's error taxonomy (docs/robustness.md):
//
//   - context cancellation and deadlines are Canceled — the caller's run
//     is over; retrying would fight the user;
//   - corrupt input (trace.IsCorrupt: bad magic, truncation, checksum
//     mismatches …) is Permanent — the bytes will not heal;
//   - scheduler invariant violations (core.InvariantError) and watchdog
//     stalls (watchdog.ErrStalled) are Permanent — the pipeline is
//     deterministic, so the same cell fails the same way again (both mark
//     themselves via the Permanent()/sentinel conventions below);
//   - everything else — injected faults (faultinject.ErrInjected), I/O and
//     stream hiccups, net-style timeouts — is Transient and worth a
//     bounded, backed-off re-attempt.
//
// The classifier is extensible without import cycles: any error exposing
// `Permanent() bool` is classified by its own answer, mirroring the
// net.Error Timeout()/Temporary() convention.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/trace"
	"repro/internal/watchdog"
)

// Process-wide attempt counters, bridged into the serving metrics
// registry (retry_attempts_total / retry_backoffs_total on /metrics).
// Package atomics rather than injected handles: Do is a free function
// called from half a dozen layers, and the taxonomy is process-global.
var (
	totalAttempts atomic.Int64 // fn invocations (first tries included)
	totalBackoffs atomic.Int64 // backoff sleeps taken (i.e. re-attempts granted)
)

// Attempts reports how many retryable-operation attempts have run
// process-wide since start.
func Attempts() int64 { return totalAttempts.Load() }

// Backoffs reports how many backoff waits (re-attempts granted to a
// transient failure) have been taken process-wide since start.
func Backoffs() int64 { return totalBackoffs.Load() }

// Class partitions errors by what retrying can achieve.
type Class int

const (
	// Transient failures may heal on re-attempt.
	Transient Class = iota
	// Permanent failures are deterministic; retrying repeats them.
	Permanent
	// Canceled failures come from the caller's own context; stop at once.
	Canceled
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Classify maps err onto the taxonomy above. Unknown errors default to
// Transient: the retry budget is bounded, so the cost of re-attempting a
// novel permanent failure is a few backoffs, while misclassifying a
// transient one as permanent would forfeit a recoverable cell.
func Classify(err error) Class {
	switch {
	case err == nil:
		return Transient
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return Canceled
	case trace.IsCorrupt(err):
		return Permanent
	case errors.Is(err, watchdog.ErrStalled):
		return Permanent
	}
	var p interface{ Permanent() bool }
	if errors.As(err, &p) {
		if p.Permanent() {
			return Permanent
		}
		return Transient
	}
	return Transient
}

// Policy bounds the retry loop. The zero Policy means one attempt, no
// retry; fields default individually so callers set only what they need.
type Policy struct {
	// MaxAttempts is the total number of attempts (first try included);
	// <= 0 means 1.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; 0 means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 means 2s.
	MaxDelay time.Duration
	// Multiplier grows the backoff between attempts; <= 1 means 2.
	Multiplier float64
	// Jitter spreads each delay uniformly over ±Jitter×delay; negative
	// disables jitter, 0 means the default 0.25. Jitter keeps a worker
	// pool's retries from resynchronizing into thundering herds.
	Jitter float64
	// Seed drives the jitter; 0 seeds from the clock. Tests pin it.
	Seed int64
	// Classify overrides the default classifier when non-nil.
	Classify func(error) Class
	// Sleep overrides the backoff wait when non-nil (tests record delays
	// instead of sleeping). It must honor ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.25
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Seed == 0 {
		p.Seed = time.Now().UnixNano()
	}
	if p.Classify == nil {
		p.Classify = Classify
	}
	if p.Sleep == nil {
		p.Sleep = sleep
	}
	return p
}

// sleep waits for d or until ctx ends, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs fn (attempt numbers start at 1) until it succeeds, fails
// permanently, is canceled, or exhausts the attempt budget. It returns the
// number of attempts actually made alongside the final error.
//
// A cancellation that lands during a backoff wait is joined with the last
// attempt's error, so callers see both why the loop was waiting and why it
// stopped.
func Do(ctx context.Context, p Policy, fn func(attempt int) error) (attempts int, err error) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	delay := p.BaseDelay
	for attempt := 1; ; attempt++ {
		totalAttempts.Add(1)
		err = fn(attempt)
		if err == nil {
			return attempt, nil
		}
		if attempt >= p.MaxAttempts {
			return attempt, err
		}
		if class := p.Classify(err); class != Transient {
			return attempt, err
		}
		d := delay
		if p.Jitter > 0 {
			// Uniform over [d×(1−J), d×(1+J)].
			d = time.Duration(float64(d) * (1 - p.Jitter + 2*p.Jitter*rng.Float64()))
		}
		totalBackoffs.Add(1)
		if serr := p.Sleep(ctx, d); serr != nil {
			return attempt, errors.Join(serr, err)
		}
		if cerr := ctx.Err(); cerr != nil {
			// Belt and braces for Sleep overrides: even a Sleep that
			// ignored the cancellation must not keep the loop retrying.
			return attempt, errors.Join(cerr, err)
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}
