// Package perf is the simulator's performance-observability layer: wall
// clock timers, per-cell throughput accounting (MInstr/s), the BENCH_*.json
// trajectory format the CI benchmark gate consumes, and thin wrappers over
// runtime/pprof for the -cpuprofile/-memprofile CLI flags.
//
// The package exists so the hot-loop optimizations in internal/core are
// provable and locked in: every experiments.Runner can carry a Collector
// that records how fast each simulation cell ran, the ddbench command turns
// benchmark results into Points, and Compare implements the regression gate
// (fail on >threshold ns/op growth or any new allocs/op). See
// docs/performance.md for the workflow.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// Timer measures one wall-clock interval. The zero value is not useful;
// obtain one from Start.
type Timer struct{ t0 time.Time }

// Start begins timing.
func Start() Timer { return Timer{t0: time.Now()} }

// Seconds reports the time elapsed since Start.
func (t Timer) Seconds() float64 { return time.Since(t.t0).Seconds() }

// MInstrPerSec converts an instruction count and a duration into the
// paper-domain throughput unit, millions of simulated instructions per
// wall-clock second. Non-positive durations report 0 rather than Inf so
// sub-resolution cells stay renderable.
func MInstrPerSec(instructions int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(instructions) / seconds / 1e6
}

// Cell is the performance record of one simulation cell: which (workload,
// config, width) ran, how many instructions it scheduled, and how long the
// simulation took (trace generation and store I/O excluded).
type Cell struct {
	Workload     string  `json:"workload"`
	Config       string  `json:"config"`
	Width        int     `json:"width"`
	Instructions int64   `json:"instructions"`
	Seconds      float64 `json:"seconds"`
}

// MInstrPerSec reports the cell's simulation throughput.
func (c Cell) MInstrPerSec() float64 { return MInstrPerSec(c.Instructions, c.Seconds) }

// Collector accumulates cell records from concurrent simulation workers.
// All methods are safe for concurrent use; the zero value is ready.
type Collector struct {
	mu    sync.Mutex
	cells []Cell
}

// Record appends one cell record.
func (c *Collector) Record(cell Cell) {
	c.mu.Lock()
	c.cells = append(c.cells, cell)
	c.mu.Unlock()
}

// Cells returns a copy of the recorded cells in record order.
func (c *Collector) Cells() []Cell {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Cell, len(c.cells))
	copy(out, c.cells)
	return out
}

// Summary aggregates the recorded cells. Seconds is the sum of per-cell
// simulation time — CPU-seconds across workers, not wall clock — so
// MInstrPerSec reports per-core simulation speed.
type Summary struct {
	Cells        int     `json:"cells"`
	Instructions int64   `json:"instructions"`
	Seconds      float64 `json:"seconds"`
}

// MInstrPerSec reports the aggregate simulation throughput per core.
func (s Summary) MInstrPerSec() float64 { return MInstrPerSec(s.Instructions, s.Seconds) }

// Summary reduces the collector's cells.
func (c *Collector) Summary() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s Summary
	for _, cell := range c.cells {
		s.Cells++
		s.Instructions += cell.Instructions
		s.Seconds += cell.Seconds
	}
	return s
}

// --- BENCH_*.json trajectory format ----------------------------------------

// ReportVersion is the BENCH_*.json schema version. Compare refuses
// mismatched versions: a gate comparing different schemas is not a gate.
const ReportVersion = 1

// Point is one benchmark measurement in a trajectory file. Name identifies
// the benchmark (stable across runs — Compare joins on it); NsPerOp,
// BytesPerOp and AllocsPerOp carry the testing.BenchmarkResult metrics;
// MInstrPerSec, when non-zero, is the domain throughput.
type Point struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	MInstrPerSec float64 `json:"minstr_per_sec,omitempty"`
}

// Report is one BENCH_*.json file: a set of points measured at one moment
// of the repo's history.
type Report struct {
	Version   int     `json:"version"`
	When      string  `json:"when,omitempty"` // RFC3339, informational
	GoVersion string  `json:"go_version,omitempty"`
	Points    []Point `json:"points"`
}

// NewReport stamps a report with the current schema version, time, and
// toolchain, sorting points by name so files diff cleanly.
func NewReport(points []Point) Report {
	pts := make([]Point, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Name < pts[j].Name })
	return Report{
		Version:   ReportVersion,
		When:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Points:    pts,
	}
}

// WriteFile writes the report as indented JSON (trailing newline included,
// so checked-in baselines satisfy text-file hygiene).
func WriteFile(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: encoding report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	return nil
}

// ReadFile parses a BENCH_*.json file, rejecting schema mismatches.
func ReadFile(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("perf: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("perf: parsing %s: %w", path, err)
	}
	if rep.Version != ReportVersion {
		return Report{}, fmt.Errorf("perf: %s: report version %d, want %d", path, rep.Version, ReportVersion)
	}
	return rep, nil
}

// --- regression gate -------------------------------------------------------

// Regression is one benchmark-gate failure.
type Regression struct {
	Name   string // benchmark name
	Metric string // "ns/op" or "allocs/op"
	Base   float64
	Got    float64
}

// String renders the regression for the gate's failure output.
func (r Regression) String() string {
	switch r.Metric {
	case "allocs/op":
		return fmt.Sprintf("%s: allocs/op %v -> %v (any increase fails)", r.Name, int64(r.Base), int64(r.Got))
	default:
		pct := 0.0
		if r.Base > 0 {
			pct = 100 * (r.Got/r.Base - 1)
		}
		return fmt.Sprintf("%s: ns/op %.0f -> %.0f (%+.1f%%)", r.Name, r.Base, r.Got, pct)
	}
}

// Compare implements the benchmark gate: for every point present in both
// reports (joined by name), it fails ns/op growth beyond threshold
// (fractional: 0.10 = +10%) and *any* allocs/op growth. Points only in got
// are new benchmarks, not regressions; points only in base have been
// removed and are likewise ignored — the gate guards what still exists.
func Compare(base, got Report, threshold float64) []Regression {
	byName := make(map[string]Point, len(base.Points))
	for _, p := range base.Points {
		byName[p.Name] = p
	}
	var regs []Regression
	for _, g := range got.Points {
		b, ok := byName[g.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && g.NsPerOp > b.NsPerOp*(1+threshold) {
			regs = append(regs, Regression{Name: g.Name, Metric: "ns/op", Base: b.NsPerOp, Got: g.NsPerOp})
		}
		if g.AllocsPerOp > b.AllocsPerOp {
			regs = append(regs, Regression{Name: g.Name, Metric: "allocs/op", Base: float64(b.AllocsPerOp), Got: float64(g.AllocsPerOp)})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}

// --- pprof wrappers --------------------------------------------------------

// StartCPUProfile begins writing a CPU profile to path and returns the stop
// function that finishes and closes it. Callers defer stop().
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("perf: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("perf: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("perf: cpu profile: %w", err)
		}
		return nil
	}, nil
}

// WriteHeapProfile captures an allocation profile to path after forcing a
// GC, so the profile reflects live heap rather than collectible garbage.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("perf: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("perf: heap profile: %w", err)
	}
	return nil
}
