package perf

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestMInstrPerSec(t *testing.T) {
	if got := MInstrPerSec(2_000_000, 2); got != 1 {
		t.Errorf("MInstrPerSec(2M, 2s) = %v, want 1", got)
	}
	if got := MInstrPerSec(1000, 0); got != 0 {
		t.Errorf("MInstrPerSec(_, 0) = %v, want 0 (not Inf)", got)
	}
	if got := MInstrPerSec(1000, -1); got != 0 {
		t.Errorf("MInstrPerSec(_, -1) = %v, want 0", got)
	}
}

func TestCollectorSummary(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				c.Record(Cell{Workload: "w", Config: "D", Width: 8, Instructions: 1000, Seconds: 0.001})
			}
		}()
	}
	wg.Wait()
	s := c.Summary()
	if s.Cells != 80 || s.Instructions != 80_000 {
		t.Fatalf("summary = %+v, want 80 cells, 80000 instructions", s)
	}
	if got := len(c.Cells()); got != 80 {
		t.Fatalf("Cells() len = %d, want 80", got)
	}
	if s.MInstrPerSec() < 0.5 {
		t.Fatalf("summary throughput = %v, want ~1 MInstr/s", s.MInstrPerSec())
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	rep := NewReport([]Point{
		{Name: "b/z", NsPerOp: 100, AllocsPerOp: 2, BytesPerOp: 64},
		{Name: "a/a", NsPerOp: 50, MInstrPerSec: 6.5},
	})
	if rep.Version != ReportVersion {
		t.Fatalf("NewReport version = %d, want %d", rep.Version, ReportVersion)
	}
	if rep.Points[0].Name != "a/a" || rep.Points[1].Name != "b/z" {
		t.Fatalf("NewReport did not sort points: %+v", rep.Points)
	}
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 2 || got.Points[1].NsPerOp != 100 || got.Points[0].MInstrPerSec != 6.5 {
		t.Fatalf("round trip mismatch: %+v", got.Points)
	}
}

func TestReadFileRejectsVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_old.json")
	if err := os.WriteFile(path, []byte(`{"version": 99, "points": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("ReadFile accepted a version-99 report")
	}
}

func TestCompareGate(t *testing.T) {
	base := NewReport([]Point{
		{Name: "sched", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "table1", NsPerOp: 2000, AllocsPerOp: 10},
		{Name: "removed", NsPerOp: 1, AllocsPerOp: 0},
	})
	got := NewReport([]Point{
		{Name: "sched", NsPerOp: 1099, AllocsPerOp: 0},  // +9.9%: passes at 10%
		{Name: "table1", NsPerOp: 2300, AllocsPerOp: 11}, // +15% ns/op AND +1 alloc
		{Name: "brand-new", NsPerOp: 5000, AllocsPerOp: 99},
	})
	regs := Compare(base, got, 0.10)
	if len(regs) != 2 {
		t.Fatalf("Compare found %d regressions, want 2: %v", len(regs), regs)
	}
	if regs[0].Name != "table1" || regs[0].Metric != "allocs/op" {
		t.Errorf("regs[0] = %+v, want table1 allocs/op", regs[0])
	}
	if regs[1].Name != "table1" || regs[1].Metric != "ns/op" {
		t.Errorf("regs[1] = %+v, want table1 ns/op", regs[1])
	}
	for _, r := range regs {
		if r.String() == "" {
			t.Errorf("empty String() for %+v", r)
		}
	}
	// Tighten the threshold: the sched point now regresses too.
	if regs := Compare(base, got, 0.05); len(regs) != 3 {
		t.Fatalf("Compare at 5%% found %d regressions, want 3: %v", len(regs), regs)
	}
}

func TestProfiles(t *testing.T) {
	dir := t.TempDir()
	stop, err := StartCPUProfile(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = MInstrPerSec(int64(i), 1)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := WriteHeapProfile(filepath.Join(dir, "heap.pprof")); err != nil {
		t.Fatal(err)
	}
}
