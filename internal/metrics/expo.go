package metrics

// Prometheus text exposition (version 0.0.4): the lingua franca of every
// scraping stack, and greppable by a human under pressure. Families render
// in name order, children in label order, so two snapshots of the same
// state are byte-identical — the golden test and the soak's invariant
// checks depend on that determinism.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range f.sortedChildren() {
			writeChild(bw, f, c)
		}
	}
	return bw.Flush()
}

func writeChild(w *bufio.Writer, f *family, c *child) {
	switch {
	case c.fn != nil:
		writeSample(w, f.name, f.labelNames, c.labels, "", "", c.fn())
	case c.counter != nil:
		writeSample(w, f.name, f.labelNames, c.labels, "", "", float64(c.counter.Value()))
	case c.gauge != nil:
		writeSample(w, f.name, f.labelNames, c.labels, "", "", float64(c.gauge.Value()))
	case c.hist != nil:
		s := c.hist.Snapshot()
		cum := int64(0)
		for i, bound := range s.Bounds {
			cum += s.Counts[i]
			writeSample(w, f.name+"_bucket", f.labelNames, c.labels,
				"le", formatFloat(bound), float64(cum))
		}
		cum += s.Counts[len(s.Bounds)]
		writeSample(w, f.name+"_bucket", f.labelNames, c.labels, "le", "+Inf", float64(cum))
		writeSample(w, f.name+"_sum", f.labelNames, c.labels, "", "", s.Sum)
		writeSample(w, f.name+"_count", f.labelNames, c.labels, "", "", float64(s.Count))
	}
}

// writeSample renders one line: name{labels,extraKey="extraVal"} value.
func writeSample(w *bufio.Writer, name string, labelNames, labelValues []string, extraKey, extraVal string, v float64) {
	w.WriteString(name)
	if len(labelNames) > 0 || extraKey != "" {
		w.WriteByte('{')
		sep := false
		for i, ln := range labelNames {
			if sep {
				w.WriteByte(',')
			}
			sep = true
			fmt.Fprintf(w, "%s=%q", ln, escapeLabel(labelValues[i]))
		}
		if extraKey != "" {
			if sep {
				w.WriteByte(',')
			}
			fmt.Fprintf(w, "%s=%q", extraKey, extraVal)
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel handles backslash and newline; %q adds the quote escaping.
func escapeLabel(s string) string {
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ParseText parses text exposition format back into a flat map from
// sample name (labels included verbatim, e.g. `jobs_total{state="done"}`)
// to value. It understands exactly what WritePrometheus emits — the chaos
// soak and the CI smoke use it to assert metric invariants over a live
// /metrics page without importing a client library.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space; the name+labels are
		// everything before it (label values may contain spaces).
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("metrics: unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: bad value in %q: %v", line, err)
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
