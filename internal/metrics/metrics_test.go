package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentUpdates hammers one counter, one gauge, and one histogram
// from many goroutines; -race is the real assertion, the totals are the
// sanity check.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test counter")
	g := r.Gauge("g", "test gauge")
	h := r.Histogram("h_seconds", "test histogram", []float64{0.01, 0.1, 1})
	cv := r.CounterVec("cv_total", "labeled", "k")

	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%3) * 0.05)
				cv.With("a").Inc()
				if w == 0 && i%10 == 0 {
					// Concurrent exposition must be safe too.
					_ = r.WritePrometheus(&strings.Builder{})
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := cv.With("a").Value(); got != workers*per {
		t.Errorf("vec counter = %d, want %d", got, workers*per)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("re-registering the same counter returned a different instance")
	}
	if h1, h2 := r.Histogram("h", "h", nil), r.Histogram("h", "h", nil); h1 != h2 {
		t.Fatal("re-registering the same histogram returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("v_total", "v", "a", "b")
	if v.With("1", "2") != v.With("1", "2") {
		t.Fatal("same label values returned different children")
	}
	if v.With("1", "2") == v.With("2", "1") {
		t.Fatal("different label values returned the same child")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform over (0, 1]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if q := h.Quantile(0.5); math.Abs(q-0.5) > 1e-9 {
		t.Errorf("p50 of uniform(0,1] = %v, want 0.5 (interpolated)", q)
	}
	// Add 100 observations in (1, 2]: p50 now sits at the bucket edge.
	for i := 1; i <= 100; i++ {
		h.Observe(1 + float64(i)/100)
	}
	if q := h.Quantile(0.5); math.Abs(q-1.0) > 1e-9 {
		t.Errorf("p50 after second bucket fill = %v, want 1.0", q)
	}
	if q := h.Quantile(0.75); math.Abs(q-1.5) > 1e-9 {
		t.Errorf("p75 = %v, want 1.5", q)
	}
	// Overflow bucket reports its lower bound.
	h2 := newHistogram([]float64{1})
	h2.Observe(100)
	if q := h2.Quantile(0.5); q != 1 {
		t.Errorf("overflow quantile = %v, want 1 (last bound)", q)
	}
	// Empty histogram.
	if q := newHistogram([]float64{1}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramSummary(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	s := h.Summary()
	if s.Count != 2 || math.Abs(s.Sum-2.0) > 1e-9 {
		t.Errorf("summary count/sum = %d/%v, want 2/2.0", s.Count, s.Sum)
	}
	if s.P99 <= s.P50 {
		t.Errorf("p99 (%v) <= p50 (%v)", s.P99, s.P50)
	}
}

// TestExpositionGolden pins the exact exposition bytes for a small fixed
// registry: families in name order, children in label order, histogram
// buckets cumulative with le labels plus _sum and _count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total", "last by name").Add(3)
	r.Gauge("alpha_depth", "first by name").Set(7)
	v := r.CounterVec("beta_total", "labeled", "kind", "code")
	v.With("job", "200").Add(2)
	v.With("job", "429").Inc()
	h := r.Histogram("gamma_seconds", "histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("delta", "func gauge", func() float64 { return 1.5 })

	want := `# HELP alpha_depth first by name
# TYPE alpha_depth gauge
alpha_depth 7
# HELP beta_total labeled
# TYPE beta_total counter
beta_total{kind="job",code="200"} 2
beta_total{kind="job",code="429"} 1
# HELP delta func gauge
# TYPE delta gauge
delta 1.5
# HELP gamma_seconds histogram
# TYPE gamma_seconds histogram
gamma_seconds_bucket{le="0.1"} 2
gamma_seconds_bucket{le="1"} 3
gamma_seconds_bucket{le="+Inf"} 4
gamma_seconds_sum 5.6
gamma_seconds_count 4
# HELP zeta_total last by name
# TYPE zeta_total counter
zeta_total 3
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}

	// Two renders of the same state are byte-identical.
	var sb2 strings.Builder
	_ = r.WritePrometheus(&sb2)
	if sb.String() != sb2.String() {
		t.Error("two renders of the same registry differ")
	}
}

// TestParseTextRoundTrip feeds the writer's output back through the
// parser and checks the samples survive.
func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(41)
	r.CounterVec("b_total", "b", "x").With("y z").Add(2) // label value with a space
	h := r.Histogram("h_seconds", "h", []float64{1})
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"a_total":                  41,
		`b_total{x="y z"}`:         2,
		`h_seconds_bucket{le="1"}`: 1,
		"h_seconds_count":          1,
		"h_seconds_sum":            0.5,
	} {
		if got[name] != want {
			t.Errorf("parsed %s = %v, want %v (all: %v)", name, got[name], want, got)
		}
	}
}
