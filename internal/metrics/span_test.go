package metrics

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func TestSpanParentLinkage(t *testing.T) {
	tr := NewTrace("job-1")
	root := tr.StartSpan("job", nil)
	child := tr.StartSpan("run", root)
	grand := tr.StartSpan("simulate", child)
	grand.Annotate("workload", "compress")
	grand.End()
	child.End()
	root.End()

	doc := tr.Doc()
	if doc.Trace != "job-1" || len(doc.Spans) != 3 {
		t.Fatalf("doc = %+v, want 3 spans for job-1", doc)
	}
	byName := map[string]SpanEvent{}
	for _, s := range doc.Spans {
		byName[s.Name] = s
	}
	if byName["job"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["job"].Parent)
	}
	if byName["run"].Parent != byName["job"].ID {
		t.Errorf("run parent = %d, want %d", byName["run"].Parent, byName["job"].ID)
	}
	if byName["simulate"].Parent != byName["run"].ID {
		t.Errorf("simulate parent = %d, want %d", byName["simulate"].Parent, byName["run"].ID)
	}
	if byName["simulate"].Attrs["workload"] != "compress" {
		t.Errorf("annotation lost: %+v", byName["simulate"].Attrs)
	}
	for _, s := range doc.Spans {
		if s.DurUS < 0 {
			t.Errorf("span %s still open in doc: dur_us = %d", s.Name, s.DurUS)
		}
	}

	// The doc must be JSON-serializable (it is an HTTP response body).
	if _, err := json.Marshal(doc); err != nil {
		t.Fatal(err)
	}
}

func TestSpanContextPlumbing(t *testing.T) {
	// Untraced context: everything no-ops, nothing panics.
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "orphan")
	if s != nil || ctx2 != ctx {
		t.Fatal("StartSpan on an untraced context must return (ctx, nil)")
	}
	s.End()
	s.Annotate("k", "v") // nil-safe

	tr := NewTrace("job-2")
	ctx = WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	ctx, outer := StartSpan(ctx, "outer")
	_, inner := StartSpan(ctx, "inner")
	inner.End()
	outer.End()
	doc := tr.Doc()
	if len(doc.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(doc.Spans))
	}
	if doc.Spans[1].Parent != doc.Spans[0].ID {
		t.Errorf("inner span not parented to outer: %+v", doc.Spans)
	}
}

func TestSpanOpenInDoc(t *testing.T) {
	tr := NewTrace("job-3")
	tr.StartSpan("still-running", nil)
	doc := tr.Doc()
	if len(doc.Spans) != 1 || doc.Spans[0].DurUS != -1 {
		t.Fatalf("open span must render dur_us=-1, got %+v", doc.Spans)
	}
}

// TestSpanCapBounded: past maxSpansPerTrace, StartSpan returns nil and
// the doc counts the drops — a retry storm cannot grow a job record
// without bound.
func TestSpanCapBounded(t *testing.T) {
	tr := NewTrace("job-4")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		tr.StartSpan("s", nil)
	}
	doc := tr.Doc()
	if len(doc.Spans) != maxSpansPerTrace {
		t.Errorf("got %d spans, want cap %d", len(doc.Spans), maxSpansPerTrace)
	}
	if doc.Dropped != 10 {
		t.Errorf("dropped = %d, want 10", doc.Dropped)
	}
}

// TestSpanConcurrency: concurrent span creation/end and Doc snapshots
// race-cleanly (run under -race).
func TestSpanConcurrency(t *testing.T) {
	tr := NewTrace("job-5")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := tr.StartSpan("s", nil)
				s.Annotate("i", "x")
				_ = tr.Doc()
				s.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Doc().Spans); got != 400 {
		t.Errorf("got %d spans, want 400", got)
	}
}
