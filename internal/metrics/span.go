package metrics

// Per-job trace spans: a lightweight event log of what one job actually
// did — queue wait, each retry attempt, store lookups, the simulation
// itself — with parent linkage, rendered as structured JSON on
// GET /jobs/{id}/trace. This is the single-request complement to the
// histograms: the histogram says p99 is slow, the span dump says *which
// phase* of *this* job was slow.
//
// The API is deliberately nil-tolerant: TraceFrom on an untraced context
// returns nil, StartSpan on such a context returns a nil *Span, and every
// *Span method no-ops on nil — so instrumented code (the runner, the
// breaker) never branches on "is tracing on?".

import (
	"context"
	"sync"
	"time"
)

// maxSpansPerTrace bounds one trace's memory: a retry storm or a deep
// sweep cannot grow a job record without limit. Past the cap, StartSpan
// returns nil spans (and the trace notes how many were dropped).
const maxSpansPerTrace = 512

// Trace is one job's span log. Create with NewTrace; safe for concurrent
// use (the worker appends while GET /jobs/{id}/trace snapshots).
type Trace struct {
	id    string
	start time.Time

	mu      sync.Mutex
	nextID  int
	spans   []*Span
	dropped int
}

// NewTrace starts an empty trace identified by id (the job ID).
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID reports the trace's identifier.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Span is one timed region inside a trace. A nil *Span is a valid no-op
// receiver for every method.
type Span struct {
	tr     *Trace
	id     int
	parent int // 0 = root

	mu      sync.Mutex
	name    string
	startNS int64 // since trace start
	endNS   int64 // -1 while open
	attrs   [][2]string
}

// StartSpan opens a span under parent (nil parent = root). It returns nil
// once the trace's span cap is reached.
func (t *Trace) StartSpan(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
		return nil
	}
	t.nextID++
	s := &Span{tr: t, id: t.nextID, name: name,
		startNS: int64(time.Since(t.start)), endNS: -1}
	if parent != nil {
		s.parent = parent.id
	}
	t.spans = append(t.spans, s)
	return s
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.endNS < 0 {
		s.endNS = int64(time.Since(s.tr.start))
	}
}

// Annotate attaches a key/value note to the span (cache hit, error kind,
// attempt number).
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attrs = append(s.attrs, [2]string{key, value})
}

// SpanEvent is one span rendered for JSON.
type SpanEvent struct {
	ID      int               `json:"id"`
	Parent  int               `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"` // -1 while the span is open
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// TraceDoc is the GET /jobs/{id}/trace response body.
type TraceDoc struct {
	Trace   string      `json:"trace"`
	Spans   []SpanEvent `json:"spans"`
	Dropped int         `json:"dropped_spans,omitempty"`
}

// Doc snapshots the trace for JSON rendering, spans in start order.
func (t *Trace) Doc() TraceDoc {
	if t == nil {
		return TraceDoc{}
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	doc := TraceDoc{Trace: t.id, Dropped: t.dropped}
	t.mu.Unlock()
	doc.Spans = make([]SpanEvent, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		ev := SpanEvent{ID: s.id, Parent: s.parent, Name: s.name,
			StartUS: s.startNS / 1e3, DurUS: -1}
		if s.endNS >= 0 {
			ev.DurUS = (s.endNS - s.startNS) / 1e3
		}
		if len(s.attrs) > 0 {
			ev.Attrs = make(map[string]string, len(s.attrs))
			for _, kv := range s.attrs {
				ev.Attrs[kv[0]] = kv[1]
			}
		}
		s.mu.Unlock()
		doc.Spans = append(doc.Spans, ev)
	}
	return doc
}

// --- context plumbing --------------------------------------------------------

type traceCtxKey struct{}
type spanCtxKey struct{}

// WithTrace returns a context carrying the trace; instrumented layers
// below (the runner, the breaker) pick it up via TraceFrom/StartSpan.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// spanFrom returns the context's current span, or nil.
func spanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a span named name under the context's current span (or
// as a root) and returns a derived context in which the new span is the
// parent of further StartSpan calls. On an untraced context it returns
// (ctx, nil) — and a nil span is safe to End/Annotate.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TraceFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	s := t.StartSpan(name, spanFrom(ctx))
	if s == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}
