// Package metrics is the serving stack's instrumentation registry: a
// dependency-free (stdlib-only), race-safe home for the counters, gauges,
// and latency histograms that every layer of the pipeline — server,
// runner, store, breaker, scrubber, retry, watchdog — previously kept as
// ad-hoc atomics scattered across Health/BreakerStats/ScrubStats
// snapshots. One Registry owns every metric family; GET /metrics renders
// them all in Prometheus text exposition format (WritePrometheus), and
// per-job trace spans (span.go) make individual requests visible the same
// way the paper makes speculation visible: as distributions and event
// timelines, not means.
//
// The design follows the source paper's methodological stance — the
// contribution is *measurement* — and the FSPN modeling line of work
// (PAPERS.md) that shows latency distributions, not averages, reveal
// speculative behavior: hence fixed-bucket histograms with exported
// quantile summaries rather than single "average latency" gauges.
//
// Metric kinds:
//
//   - Counter: monotonically increasing atomic int64 (Inc/Add);
//   - Gauge: settable atomic int64 (queue depth, breaker state);
//   - func metrics (CounterFunc/GaugeFunc): read-through bridges over
//     counters that already exist elsewhere (store.Stats, watchdog
//     package atomics) so legacy snapshots and /metrics can never
//     disagree — there is exactly one underlying atomic;
//   - Histogram: fixed upper-bound buckets, atomic per-bucket counts,
//     lock-free Observe, quantile estimation by linear interpolation;
//   - labeled families (CounterVec/GaugeVec/HistogramVec): one family
//     name, one child metric per label-value tuple.
//
// Registration is idempotent: asking for an existing family with the same
// kind returns it; re-registering a name as a different kind panics
// (programmer error, caught by the first test that runs).
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is usable.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programmer error; they are applied
// as-is because checking would put a branch on every hot-path increment).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value. The zero value is usable.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add applies a delta (positive or negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind partitions metric families by exposition type.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// child is one concrete metric inside a family: a Counter, Gauge,
// *Histogram, or a read-through func.
type child struct {
	labels  []string // label values, same order as family.labelNames
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // func metric; exclusive with the above
}

// family is one named metric family: a help string, a kind, and one child
// per label-value tuple ("" key for the unlabeled singleton).
type family struct {
	name       string
	help       string
	kind       kind
	labelNames []string
	buckets    []float64 // histogram families only

	mu       sync.Mutex
	children map[string]*child
	order    []string // insertion order of child keys; sorted at exposition
}

// Registry is a set of metric families. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyFor returns the named family, creating it on first use and
// panicking on a kind or label mismatch — two call sites disagreeing
// about what a name means is a bug worth failing loudly on.
func (r *Registry) familyFor(name, help string, k kind, labelNames []string, buckets []float64) *family {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k {
			panic(fmt.Sprintf("metrics: %s re-registered as %s, was %s", name, k, f.kind))
		}
		if len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("metrics: %s re-registered with %d label(s), was %d",
				name, len(labelNames), len(f.labelNames)))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, labelNames: labelNames,
		buckets: buckets, children: make(map[string]*child)}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// childFor returns the family's child for the given label values,
// creating it with mk on first use.
func (f *family) childFor(labelValues []string, mk func() *child) *child {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s wants %d label value(s), got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := labelKey(labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := mk()
	c.labels = append([]string(nil), labelValues...)
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// labelKey joins label values into a map key. \x1f never appears in
// sane label values; a value containing it would only merge two children,
// never corrupt memory.
func labelKey(values []string) string {
	key := ""
	for i, v := range values {
		if i > 0 {
			key += "\x1f"
		}
		key += v
	}
	return key
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.familyFor(name, help, kindCounter, nil, nil)
	c := f.childFor(nil, func() *child { return &child{counter: &Counter{}} })
	return c.counter
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.familyFor(name, help, kindGauge, nil, nil)
	c := f.childFor(nil, func() *child { return &child{gauge: &Gauge{}} })
	return c.gauge
}

// CounterFunc registers a read-through counter whose value is fn() at
// exposition time. Use it to bridge counters that already live elsewhere
// (store.Stats, watchdog.Abandoned) into the registry without duplicating
// the underlying atomic.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.familyFor(name, help, kindCounter, nil, nil)
	f.childFor(nil, func() *child { return &child{fn: fn} })
}

// GaugeFunc registers a read-through gauge sampled at exposition time
// (queue depth, goroutine count, breaker state).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.familyFor(name, help, kindGauge, nil, nil)
	f.childFor(nil, func() *child { return &child{fn: fn} })
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// bucket upper bounds (nil means DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	f := r.familyFor(name, help, kindHistogram, nil, buckets)
	c := f.childFor(nil, func() *child { return &child{hist: newHistogram(f.buckets)} })
	return c.hist
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.familyFor(name, help, kindCounter, labelNames, nil)}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(labelValues ...string) *Counter {
	c := v.f.childFor(labelValues, func() *child { return &child{counter: &Counter{}} })
	return c.counter
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.familyFor(name, help, kindGauge, labelNames, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	c := v.f.childFor(labelValues, func() *child { return &child{gauge: &Gauge{}} })
	return c.gauge
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family with the
// given bucket upper bounds (nil means DefaultLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	return &HistogramVec{r.familyFor(name, help, kindHistogram, labelNames, buckets)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	c := v.f.childFor(labelValues, func() *child { return &child{hist: newHistogram(v.f.buckets)} })
	return c.hist
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren snapshots a family's children in label-key order.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	cs := make([]*child, 0, len(keys))
	for _, k := range keys {
		cs = append(cs, f.children[k])
	}
	f.mu.Unlock()
	return cs
}
