package metrics

// Fixed-bucket histograms. Observe is lock-free: one binary search over
// the (immutable) bucket bounds plus two atomic adds, so instrumenting a
// hot path costs nanoseconds. Quantiles are estimated from the bucket
// counts by linear interpolation within the containing bucket — exactly
// the trade the paper's measurement machinery makes: bounded memory,
// known error, full distribution shape.

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefaultLatencyBuckets spans 100µs to 60s: fine resolution where the
// serving pipeline actually lives (sub-millisecond store reads, tens of
// milliseconds per simulated cell) and coarse headroom for stalls.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// atomicFloat is an atomic float64 (bit-cast through uint64, CAS add).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram counts observations into fixed buckets. Create via
// Registry.Histogram / HistogramVec.With; the zero value is not usable.
type Histogram struct {
	bounds []float64      // strictly increasing upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Snapshot is a consistent-enough copy of a histogram's state for
// rendering (individual loads are atomic; a concurrent Observe may appear
// in counts but not yet in a bucket or vice versa — exposition tolerates
// being one observation ahead or behind).
type Snapshot struct {
	Bounds []float64 // upper bounds, ascending (no +Inf entry)
	Counts []int64   // per-bucket (non-cumulative); len(Bounds)+1
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{Bounds: h.bounds, Counts: make([]int64, len(h.counts))}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts by
// linear interpolation within the containing bucket. The overflow bucket
// reports its lower bound (the histogram cannot see past its last bound);
// an empty histogram reports 0. The estimate's error is bounded by the
// containing bucket's width — the price of bounded memory.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Quantile is Histogram.Quantile over a snapshot.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i == len(s.Bounds) {
			// Overflow bucket: no upper bound to interpolate toward.
			return lo
		}
		hi := s.Bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	if n := len(s.Bounds); n > 0 {
		return s.Bounds[n-1]
	}
	return 0
}

// Summary is the conventional quantile trio plus count and sum — what the
// drain snapshot and soak logs print for each latency histogram.
type Summary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summary computes the quantile summary from one consistent snapshot.
func (h *Histogram) Summary() Summary {
	s := h.Snapshot()
	return Summary{Count: s.Count, Sum: s.Sum,
		P50: s.Quantile(0.5), P90: s.Quantile(0.9), P99: s.Quantile(0.99)}
}
