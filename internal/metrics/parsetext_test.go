package metrics

// Table-driven edge cases for ParseText: the parser is the soak's only
// window into a live /metrics page, so the corners of the exposition
// format — empty families, escaped label values, the +Inf bucket — must
// parse exactly, and garbage must be an error rather than a silent zero.

import (
	"strings"
	"testing"
)

func TestParseTextEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		want    map[string]float64
		wantErr bool
	}{
		{
			name: "empty family is metadata only",
			in:   "# HELP empty_total never incremented\n# TYPE empty_total counter\n",
			want: map[string]float64{},
		},
		{
			name: "blank lines and comments skipped",
			in:   "\n# just a comment\n\na_total 3\n\n",
			want: map[string]float64{"a_total": 3},
		},
		{
			name: "escaped newline in label value",
			in:   `j_total{msg="line1\nline2"} 2` + "\n",
			want: map[string]float64{`j_total{msg="line1\nline2"}`: 2},
		},
		{
			name: "spaces inside label value",
			in:   `j_total{msg="two words here"} 7` + "\n",
			want: map[string]float64{`j_total{msg="two words here"}`: 7},
		},
		{
			name: "+Inf bucket and scientific value",
			in: `h_bucket{le="0.1"} 1
h_bucket{le="+Inf"} 4
h_sum 1.5e-05
h_count 4
`,
			want: map[string]float64{
				`h_bucket{le="0.1"}`:  1,
				`h_bucket{le="+Inf"}`: 4,
				"h_sum":               1.5e-05,
				"h_count":             4,
			},
		},
		{
			name: "negative and NaN-free gauge values",
			in:   "g -12.5\n",
			want: map[string]float64{"g": -12.5},
		},
		{
			name:    "line with no space is an error",
			in:      "orphan_total\n",
			wantErr: true,
		},
		{
			name:    "non-numeric value is an error",
			in:      "a_total banana\n",
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseText(strings.NewReader(tc.in))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParseText(%q) = %v, want error", tc.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseText(%q): %v", tc.in, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("parsed %d samples, want %d (got %v)", len(got), len(tc.want), got)
			}
			for k, v := range tc.want {
				if got[k] != v {
					t.Errorf("sample %s = %v, want %v", k, got[k], v)
				}
			}
		})
	}
}

// TestParseTextEmptyFamilyRoundTrip proves the writer and parser agree on
// a family that exists but has no children: two metadata lines, no samples.
func TestParseTextEmptyFamilyRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("unused_total", "registered, never observed", "kind")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE unused_total counter") {
		t.Fatalf("empty family lost its TYPE line:\n%s", out)
	}
	got, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty family produced samples: %v", got)
	}
}
