package depgraph

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

func rec(pc uint32, in isa.Instr) trace.Record { return trace.Record{PC: pc, Instr: in} }

func ldi(rd uint8, imm int32) isa.Instr {
	return isa.Instr{Op: isa.Ldi, Rd: rd, Imm: imm, HasImm: true}
}

func addImm(rd, rs1 uint8, imm int32) isa.Instr {
	return isa.Instr{Op: isa.Add, Rd: rd, Rs1: rs1, Imm: imm, HasImm: true}
}

func buf(recs ...trace.Record) *trace.Buffer {
	var b trace.Buffer
	for _, r := range recs {
		b.Append(r)
	}
	return &b
}

func TestSerialChain(t *testing.T) {
	// ldi; 4 dependent adds: path = 5 cycles, 5 instructions.
	b := buf(
		rec(0, ldi(1, 0)),
		rec(1, addImm(1, 1, 1)),
		rec(2, addImm(1, 1, 1)),
		rec(3, addImm(1, 1, 1)),
		rec(4, addImm(1, 1, 1)),
	)
	r := Analyze(b.Reader(), Options{})
	if r.CriticalPath != 5 {
		t.Errorf("critical path = %d, want 5", r.CriticalPath)
	}
	if r.CritInstructions != 5 {
		t.Errorf("path instructions = %d, want 5", r.CritInstructions)
	}
	if r.IPC() != 1 {
		t.Errorf("dataflow IPC = %v, want 1", r.IPC())
	}
	if r.CritClasses[isa.ClassAr] != 4 || r.CritClasses[isa.ClassMv] != 1 {
		t.Errorf("class mix = %v", r.CritClasses)
	}
}

func TestIndependentInstructions(t *testing.T) {
	b := buf(
		rec(0, ldi(1, 1)),
		rec(1, ldi(2, 2)),
		rec(2, ldi(3, 3)),
		rec(3, ldi(4, 4)),
	)
	r := Analyze(b.Reader(), Options{})
	if r.CriticalPath != 1 {
		t.Errorf("critical path = %d, want 1", r.CriticalPath)
	}
	if r.IPC() != 4 {
		t.Errorf("IPC = %v, want 4 (unbounded parallelism)", r.IPC())
	}
	if r.CritInstructions != 1 {
		t.Errorf("path has %d instructions, want 1", r.CritInstructions)
	}
}

func TestLatenciesOnPath(t *testing.T) {
	// ldi(1) -> div(12) -> add(1): path 14.
	b := buf(
		rec(0, ldi(1, 8)),
		rec(1, isa.Instr{Op: isa.Div, Rd: 2, Rs1: 1, Imm: 2, HasImm: true}),
		rec(2, addImm(3, 2, 1)),
	)
	r := Analyze(b.Reader(), Options{})
	if r.CriticalPath != 14 {
		t.Errorf("critical path = %d, want 14", r.CriticalPath)
	}
}

func TestMemoryDependenceOnPath(t *testing.T) {
	// ldi -> st -> ld -> add: 1 + 1 + 2 + 1 = 5.
	b := buf(
		rec(0, ldi(1, 7)),
		rec(1, isa.Instr{Op: isa.St, Rd: 1, Rs1: 0, Imm: 0x40, HasImm: true}),
		rec(2, isa.Instr{Op: isa.Ld, Rd: 2, Rs1: 0, Imm: 0x40, HasImm: true}),
		rec(3, addImm(3, 2, 1)),
	)
	b.At(1).Addr = 0x40
	b.At(2).Addr = 0x40
	r := Analyze(b.Reader(), Options{})
	if r.CriticalPath != 5 {
		t.Errorf("critical path = %d, want 5", r.CriticalPath)
	}
	if r.CritClasses[isa.ClassLd] != 1 || r.CritClasses[isa.ClassSt] != 1 {
		t.Errorf("memory ops missing from path: %v", r.CritClasses)
	}
}

func TestDisjointAddressesNoDependence(t *testing.T) {
	b := buf(
		rec(0, ldi(1, 7)),
		rec(1, isa.Instr{Op: isa.St, Rd: 1, Rs1: 0, Imm: 0x40, HasImm: true}),
		rec(2, isa.Instr{Op: isa.Ld, Rd: 2, Rs1: 0, Imm: 0x80, HasImm: true}),
	)
	b.At(1).Addr = 0x40
	b.At(2).Addr = 0x80
	r := Analyze(b.Reader(), Options{})
	if r.CriticalPath != 2 {
		t.Errorf("critical path = %d, want 2 (ld independent)", r.CriticalPath)
	}
}

func TestRealBranchesAddControlHeight(t *testing.T) {
	// A mispredicted branch (the default-taken predictor sees a not-taken
	// branch) serializes everything after it.
	mk := func() *trace.Buffer {
		return buf(
			rec(0, isa.Instr{Op: isa.Cmp, Rs1: 1, Imm: 0, HasImm: true}),
			trace.Record{PC: 1, Instr: isa.Instr{Op: isa.Beq}, Taken: false},
			rec(2, ldi(5, 1)),
		)
	}
	pure := Analyze(mk().Reader(), Options{})
	ctl := Analyze(mk().Reader(), Options{RealBranches: true})
	if pure.CriticalPath != 2 {
		t.Errorf("pure dataflow path = %d, want 2 (cmp -> branch)", pure.CriticalPath)
	}
	if ctl.Mispredicts != 1 {
		t.Errorf("mispredicts = %d, want 1", ctl.Mispredicts)
	}
	// cmp finishes at 1, branch at 2, barrier pushes ldi to start 2 -> 3.
	if ctl.CriticalPath != 3 {
		t.Errorf("control path = %d, want 3", ctl.CriticalPath)
	}
	if ctl.CriticalPath <= pure.CriticalPath-1 {
		t.Error("control constraints should not shorten the path")
	}
}

func TestEmptyTrace(t *testing.T) {
	r := Analyze(buf().Reader(), Options{})
	if r.CriticalPath != 0 || r.IPC() != 0 || r.CritInstructions != 0 {
		t.Errorf("empty trace report = %+v", r)
	}
}

func TestCritClassPercent(t *testing.T) {
	b := buf(
		rec(0, ldi(1, 0)),
		rec(1, addImm(1, 1, 1)),
	)
	r := Analyze(b.Reader(), Options{})
	if got := r.CritClassPercent(isa.ClassAr); got != 50 {
		t.Errorf("ar share = %v, want 50", got)
	}
	var empty Report
	if empty.CritClassPercent(isa.ClassAr) != 0 {
		t.Error("empty report percent should be 0")
	}
}

func TestR0NeverCreatesDependence(t *testing.T) {
	b := buf(
		rec(0, isa.Instr{Op: isa.Add, Rd: 0, Rs1: 5, Rs2: 6}), // writes discarded
		rec(1, isa.Instr{Op: isa.Add, Rd: 2, Rs1: 0, Rs2: 0}), // reads r0
	)
	r := Analyze(b.Reader(), Options{})
	if r.CriticalPath != 1 {
		t.Errorf("critical path = %d, want 1 (no dependence through r0)", r.CriticalPath)
	}
}
