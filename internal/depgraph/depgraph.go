// Package depgraph computes the dynamic dependence-graph limit the paper's
// introduction frames the whole study around: "in theory, the minimum
// execution time of the program is the length of the longest path (i.e.
// the 'critical path') through the dependence graph".
//
// Analyze walks a dynamic trace once and computes that longest path
// through true register and memory dependences under infinite resources —
// no window, no issue-width, no control constraints (optionally, realistic
// branch prediction can be imposed to see how much of the limit control
// flow eats). It also extracts one critical path and reports its
// instruction-class composition: the classes that dominate the path are
// precisely the ones dependence collapsing and load speculation attack.
package depgraph

import (
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Options selects the constraint model.
type Options struct {
	// RealBranches imposes the paper's misprediction rule (later
	// instructions start after the mispredicted branch finishes) using the
	// 8 kB McFarling predictor, instead of perfect control.
	RealBranches bool
}

// Report is the analysis result.
type Report struct {
	Instructions int64
	CriticalPath int64 // cycles along the longest dependence chain

	// One longest path, characterized: how many instructions lie on it and
	// their class mix. When several paths tie, an arbitrary one is used.
	CritInstructions int64
	CritClasses      [isa.NumClasses]int64

	Mispredicts int64 // only populated with RealBranches
}

// IPC reports the dataflow-limit instructions per cycle.
func (r *Report) IPC() float64 {
	if r.CriticalPath == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.CriticalPath)
}

// CritClassPercent reports class c's share of the critical path in percent.
func (r *Report) CritClassPercent(c isa.Class) float64 {
	if r.CritInstructions == 0 {
		return 0
	}
	return 100 * float64(r.CritClasses[c]) / float64(r.CritInstructions)
}

type nodeRef struct {
	finish int64
	parent int64 // dynamic index of the dependence that determined start; -1 none
}

// Analyze computes the dependence-graph limit of the trace.
func Analyze(src trace.Source, opts Options) *Report {
	rep := &Report{}
	var (
		nodes   []nodeRef
		classes []isa.Class
		regDef  [isa.NumRegs]int64 // dynamic index of last writer; -1 initial
		stores  = make(map[uint32]int64)
		barrier int64 // finish time of the last mispredicted branch
		barIdx  int64 = -1
		pred    bpred.Predictor
		readBuf []uint8
	)
	for i := range regDef {
		regDef[i] = -1
	}
	if opts.RealBranches {
		pred = bpred.NewPaper8KB()
	}

	var rec trace.Record
	for src.Next(&rec) {
		idx := int64(len(nodes))
		in := &rec.Instr
		start := int64(0)
		parent := int64(-1)

		consider := func(depIdx int64) {
			if depIdx < 0 {
				return
			}
			if f := nodes[depIdx].finish; f > start {
				start = f
				parent = depIdx
			}
		}

		readBuf = in.Reads(readBuf[:0])
		for _, r := range readBuf {
			if r != isa.R0 {
				consider(regDef[r])
			}
		}
		if in.Op == isa.Ld {
			if depIdx, ok := stores[rec.Addr]; ok {
				consider(depIdx)
			}
		}
		if barrier > start {
			start = barrier
			parent = barIdx
		}

		finish := start + int64(isa.Latency(in.Op))
		nodes = append(nodes, nodeRef{finish: finish, parent: parent})
		classes = append(classes, in.Class())
		rep.Instructions++

		if w := in.Writes(); w >= 0 {
			regDef[w] = idx
		}
		if in.Op == isa.St {
			stores[rec.Addr] = idx
		}
		if opts.RealBranches && in.IsCondBranch() {
			taken := pred.Predict(rec.PC) // predicted direction
			pred.Update(rec.PC, rec.Taken)
			if taken != rec.Taken {
				rep.Mispredicts++
				if finish > barrier {
					barrier = finish
					barIdx = idx
				}
			}
		}
	}

	// Locate the longest chain's end and walk it backward.
	var endIdx int64 = -1
	for i := range nodes {
		if nodes[i].finish > rep.CriticalPath {
			rep.CriticalPath = nodes[i].finish
			endIdx = int64(i)
		}
	}
	for cur := endIdx; cur >= 0; cur = nodes[cur].parent {
		rep.CritInstructions++
		rep.CritClasses[classes[cur]]++
	}
	return rep
}
