package repro_test

import (
	"fmt"

	"repro"
)

// ExampleRun simulates a tiny dependent chain under the base machine and
// the collapsing machine: the chain that costs four cycles on A fits in
// one on C.
func ExampleRun() {
	prog, err := repro.Assemble(`
	main:
		ldi r1, 5
		add r2, r1, 1
		add r3, r2, 2
		halt
	`)
	if err != nil {
		panic(err)
	}
	tr, _, err := repro.TraceProgram(prog)
	if err != nil {
		panic(err)
	}
	base := repro.Run(tr.Reader(), repro.ConfigA, repro.Params{Width: 8})
	coll := repro.Run(tr.Reader(), repro.ConfigC, repro.Params{Width: 8})
	fmt.Printf("base %d cycles, collapsed %d cycles\n", base.Cycles, coll.Cycles)
	// Output: base 3 cycles, collapsed 1 cycles
}

// ExampleCompileMiniC compiles and runs a MiniC program end to end.
func ExampleCompileMiniC() {
	prog, err := repro.BuildMiniC(`
		func main() {
			var sum = 0;
			for (var i = 1; i <= 10; i = i + 1) { sum = sum + i; }
			out(sum);
		}
	`)
	if err != nil {
		panic(err)
	}
	out, err := repro.Execute(prog)
	if err != nil {
		panic(err)
	}
	fmt.Println(out[0])
	// Output: 55
}

// ExampleAnalyzeLimits computes the dataflow critical path of a serial
// dependence chain: five one-cycle instructions in a row bound execution
// at five cycles no matter how wide the machine.
func ExampleAnalyzeLimits() {
	prog, err := repro.Assemble(`
	main:
		ldi r1, 0
		add r1, r1, 1
		add r1, r1, 1
		add r1, r1, 1
		add r1, r1, 1
		halt
	`)
	if err != nil {
		panic(err)
	}
	tr, _, err := repro.TraceProgram(prog)
	if err != nil {
		panic(err)
	}
	rep := repro.AnalyzeLimits(tr.Reader(), repro.LimitOptions{})
	fmt.Printf("critical path %d cycles over %d instructions\n",
		rep.CriticalPath, rep.Instructions)
	// Output: critical path 5 cycles over 6 instructions
}

// ExampleNewStridePredictor trains the paper's two-delta stride table on a
// strided stream and asks for the next address.
func ExampleNewStridePredictor() {
	p := repro.NewStridePredictor()
	for i := uint32(0); i < 6; i++ {
		p.Update(0x40, 0x1000+16*i)
	}
	pred := p.Lookup(0x40)
	fmt.Printf("confident=%v next=%#x\n", pred.Confident, pred.Addr)
	// Output: confident=true next=0x1060
}

// ExampleNewCache shows the L1 model's hit/miss behaviour.
func ExampleNewCache() {
	c := repro.NewCache(repro.DefaultL1Cache())
	first := c.Access(0x2000)  // cold miss
	second := c.Access(0x2004) // same 32-byte line
	fmt.Printf("first=%v second=%v\n", first, second)
	// Output: first=false second=true
}
