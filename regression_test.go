package repro

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// Golden scheduler regression: exact cycle counts for every workload and
// configuration at a fixed small scale and width. The simulator is fully
// deterministic, so any change to scheduling semantics — window entry,
// collapsing decisions, speculation rules, predictor behaviour — shows up
// here as an exact diff. Update the table deliberately when the model
// changes, never to silence a surprise.
var goldenCycles = map[string][5]int64{
	//            A       B       C       D       E
	"compress": {1903, 1873, 969, 969, 969},
	"espresso": {23585, 18813, 17347, 15963, 15950},
	"eqntott":  {12318, 11873, 7601, 7633, 7659},
	"li":       {26226, 25808, 20282, 19889, 13794},
	"go":       {12001, 11868, 7505, 7466, 7454},
	"ijpeg":    {173887, 158389, 106086, 106086, 106086},
}

func TestGoldenSchedulerCycles(t *testing.T) {
	const scale, width = 60, 8
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			buf, _, err := w.TraceCached(scale)
			if err != nil {
				t.Fatal(err)
			}
			want := goldenCycles[w.Name]
			for i, cfg := range core.Configs() {
				r := core.Run(buf.Reader(), cfg, core.Params{Width: width})
				if r.Cycles != want[i] {
					t.Errorf("config %s: cycles = %d, want %d (scheduler semantics changed?)",
						cfg.Name, r.Cycles, want[i])
				}
			}
		})
	}
}

// TestGoldenCyclesGrid extends the spot-checked table above to EVERY point
// of the Tables 1-6 grid: all six workloads x configurations A-F x the
// paper's five widths x two window sizes (the default 2x width and a fixed
// deep window), locked in testdata/golden/cycles.tsv. The fixture is shared
// with the conformance suite and regenerated with `go test -run Golden
// -update`.
func TestGoldenCyclesGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full cycles grid is a long sweep; skipped in -short")
	}
	const scale = 60
	gridCfgs := append(core.Configs(), core.ConfigF)
	gridWindows := []int{0, 64} // 0: the paper's 2x width

	type cell struct {
		workload, config      string
		width, window, cycles int64
	}
	var (
		mu    sync.Mutex
		cells = map[string]int64{}
	)
	key := func(wl, cfg string, width, window int) string {
		return fmt.Sprintf("%s\t%s\t%d\t%d", wl, cfg, width, window)
	}

	var wg sync.WaitGroup
	for _, w := range workloads.All() {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf, _, err := w.TraceCached(scale)
			if err != nil {
				t.Errorf("%s: %v", w.Name, err)
				return
			}
			for _, cfg := range gridCfgs {
				for _, width := range core.Widths {
					for _, window := range gridWindows {
						r := core.Run(buf.Reader(), cfg, core.Params{Width: width, WindowSize: window})
						mu.Lock()
						cells[key(w.Name, cfg.Name, width, window)] = r.Cycles
						mu.Unlock()
					}
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Render deterministically in grid order.
	var b strings.Builder
	b.WriteString("# workload\tconfig\twidth\twindow\tcycles (scale 60; window 0 = 2x width)\n")
	for _, w := range workloads.All() {
		for _, cfg := range gridCfgs {
			for _, width := range core.Widths {
				for _, window := range gridWindows {
					k := key(w.Name, cfg.Name, width, window)
					fmt.Fprintf(&b, "%s\t%d\n", k, cells[k])
				}
			}
		}
	}
	got := b.String()

	path := filepath.Join("testdata", "golden", "cycles.tsv")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s (regenerate with `go test -run Golden -update`): %v", path, err)
	}
	defer f.Close()
	want := map[string]int64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 5 {
			t.Fatalf("%s: malformed line %q", path, line)
		}
		var c cell
		if _, err := fmt.Sscanf(strings.Join(parts, " "), "%s %s %d %d %d",
			&c.workload, &c.config, &c.width, &c.window, &c.cycles); err != nil {
			t.Fatalf("%s: malformed line %q: %v", path, line, err)
		}
		want[fmt.Sprintf("%s\t%s\t%d\t%d", c.workload, c.config, c.width, c.window)] = c.cycles
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(cells) {
		t.Errorf("fixture has %d grid points, run produced %d", len(want), len(cells))
	}
	for k, cyc := range cells {
		if wantCyc, ok := want[k]; !ok {
			t.Errorf("grid point %q missing from fixture (regenerate with -update)", k)
		} else if cyc != wantCyc {
			t.Errorf("grid point %q: cycles = %d, want %d (scheduler semantics changed?)", k, cyc, wantCyc)
		}
	}

	// The coarse spot-check table above is a subset of this grid: keep the
	// two fixtures consistent so neither can drift alone.
	for name, cyc := range goldenCycles {
		for i, cfg := range core.Configs() {
			k := key(name, cfg.Name, 8, 0)
			if cells[k] != cyc[i] {
				t.Errorf("grid point %q (%d cycles) disagrees with goldenCycles (%d)", k, cells[k], cyc[i])
			}
		}
	}
}

// The golden table embeds two shape facts worth keeping visible: the
// configuration ordering the paper's Figure 3 is built on, and the noise
// floor of the greedy model (eqntott's D and E trail C by a slot-contention
// hair — the model is not strictly monotone and that is expected, hence the
// one-percent tolerance).
func TestGoldenShapeFacts(t *testing.T) {
	atMost := func(x, bound int64) bool { return x <= bound+bound/100 }
	for name, cyc := range goldenCycles {
		a, b, c, e := cyc[0], cyc[1], cyc[2], cyc[4]
		if !atMost(b, a) {
			t.Errorf("%s: B (%d) slower than A (%d)", name, b, a)
		}
		if !atMost(c, b) {
			t.Errorf("%s: C (%d) slower than B (%d)", name, c, b)
		}
		if !atMost(e, c) {
			t.Errorf("%s: E (%d) slower than C (%d)", name, e, c)
		}
	}
}
