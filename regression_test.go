package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// Golden scheduler regression: exact cycle counts for every workload and
// configuration at a fixed small scale and width. The simulator is fully
// deterministic, so any change to scheduling semantics — window entry,
// collapsing decisions, speculation rules, predictor behaviour — shows up
// here as an exact diff. Update the table deliberately when the model
// changes, never to silence a surprise.
var goldenCycles = map[string][5]int64{
	//            A       B       C       D       E
	"compress": {1903, 1873, 969, 969, 969},
	"espresso": {23585, 18813, 17347, 15963, 15950},
	"eqntott":  {12318, 11873, 7601, 7633, 7659},
	"li":       {26226, 25808, 20282, 19889, 13794},
	"go":       {12001, 11868, 7505, 7466, 7454},
	"ijpeg":    {173887, 158389, 106086, 106086, 106086},
}

func TestGoldenSchedulerCycles(t *testing.T) {
	const scale, width = 60, 8
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			buf, _, err := w.TraceCached(scale)
			if err != nil {
				t.Fatal(err)
			}
			want := goldenCycles[w.Name]
			for i, cfg := range core.Configs() {
				r := core.Run(buf.Reader(), cfg, core.Params{Width: width})
				if r.Cycles != want[i] {
					t.Errorf("config %s: cycles = %d, want %d (scheduler semantics changed?)",
						cfg.Name, r.Cycles, want[i])
				}
			}
		})
	}
}

// The golden table embeds two shape facts worth keeping visible: the
// configuration ordering the paper's Figure 3 is built on, and the noise
// floor of the greedy model (eqntott's D and E trail C by a slot-contention
// hair — the model is not strictly monotone and that is expected, hence the
// one-percent tolerance).
func TestGoldenShapeFacts(t *testing.T) {
	atMost := func(x, bound int64) bool { return x <= bound+bound/100 }
	for name, cyc := range goldenCycles {
		a, b, c, e := cyc[0], cyc[1], cyc[2], cyc[4]
		if !atMost(b, a) {
			t.Errorf("%s: B (%d) slower than A (%d)", name, b, a)
		}
		if !atMost(c, b) {
			t.Errorf("%s: C (%d) slower than B (%d)", name, c, b)
		}
		if !atMost(e, c) {
			t.Errorf("%s: E (%d) slower than C (%d)", name, e, c)
		}
	}
}
