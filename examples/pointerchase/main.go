// Pointerchase contrasts the two access patterns at the heart of the
// paper's Section 5.2: a strided array walk, whose load addresses the
// two-delta stride table learns almost perfectly, against a linked-list
// walk over the same data, whose addresses depend on loaded values and
// defeat stride prediction. The same computation, two memory layouts,
// radically different speculation behaviour — reproducing the Table 3 vs
// Table 4 contrast in miniature.
package main

import (
	"fmt"
	"log"

	"repro"
)

const arrayWalk = `
var data[4096];

func main() {
	for (var i = 0; i < 4096; i = i + 1) { data[i] = i & 255; }
	var sum = 0;
	for (var pass = 0; pass < 8; pass = pass + 1) {
		for (var i = 0; i < 4096; i = i + 1) {
			sum = sum + data[i];
		}
	}
	out(sum);
}
`

// The linked version threads the same values through cons cells allocated
// in shuffled order, so successor addresses are unpredictable.
const listWalk = lcg + `
func main() {
	// Build an index permutation, then a linked list following it.
	var perm[4096];
	var nodes = alloc(8192);   // node i: [value, next]
	for (var i = 0; i < 4096; i = i + 1) { perm[i] = i; }
	for (var i = 4095; i > 0; i = i - 1) {
		var j = rnd() & 4095;
		while (j > i) { j = j - i; }
		var t = perm[i]; perm[i] = perm[j]; perm[j] = t;
	}
	var head = 0 - 1;
	var prev = 0 - 1;
	for (var i = 0; i < 4096; i = i + 1) {
		var n = nodes + perm[i] * 8;
		n[0] = i & 255;
		n[1] = 0 - 1;
		if (prev != 0 - 1) { *(prev + 4) = n; } else { head = n; }
		prev = n;
	}
	var sum = 0;
	for (var pass = 0; pass < 8; pass = pass + 1) {
		var p = head;
		while (p != 0 - 1) {
			sum = sum + p[0];
			p = p[1];
		}
	}
	out(sum);
}
`

const lcg = `
var __seed = 24036583;
func rnd() {
	__seed = __seed * 1103515245 + 12345;
	return (__seed >> 16) & 32767;
}
`

func main() {
	fmt.Println("Stride speculation vs. memory layout (config B, width 8)")
	fmt.Println()
	fmt.Printf("%-12s %10s %8s %8s | %7s %9s %9s %7s\n",
		"layout", "instrs", "IPC(A)", "IPC(B)", "ready", "correct", "incorrect", "nopred")
	for _, c := range []struct {
		name string
		src  string
	}{{"array", arrayWalk}, {"linked-list", listWalk}} {
		prog, err := repro.BuildMiniC(c.src)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		tr, _, err := repro.TraceProgram(prog)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		base := repro.Run(tr.Reader(), repro.ConfigA, repro.Params{Width: 8})
		spec := repro.Run(tr.Reader(), repro.ConfigB, repro.Params{Width: 8})
		fmt.Printf("%-12s %10d %8.3f %8.3f | %6.1f%% %8.1f%% %8.1f%% %6.1f%%\n",
			c.name, tr.Len(), base.IPC(), spec.IPC(),
			spec.LoadPercent(spec.LoadReady),
			spec.LoadPercent(spec.LoadPredCorrect),
			spec.LoadPercent(spec.LoadPredIncorrect),
			spec.LoadPercent(spec.LoadNotPred))
	}
	fmt.Println()
	fmt.Println("The array walk's loads stride through memory and are predicted;")
	fmt.Println("the list walk's next-pointers defeat the stride table, so load")
	fmt.Println("speculation alone buys pointer-chasing code almost nothing —")
	fmt.Println("the paper's motivation for better-than-stride predictors.")
}
