// Custompredictor plugs user-defined load-address predictors into the
// simulator through the repro.AddrPredictor interface and compares them on
// the li benchmark — the pointer-chasing workload where the paper finds
// stride prediction nearly useless and calls for better mechanisms.
//
// Three predictors race:
//
//   - the paper's two-delta stride table (the baseline mechanism),
//   - a last-address predictor (predicts the previous address again),
//   - a context predictor keyed by the last address (a tiny Markov/
//     correlation table — the direction later value-prediction work took).
package main

import (
	"fmt"
	"log"

	"repro"
)

// lastAddr predicts that a load repeats its previous effective address.
type lastAddr struct {
	table map[uint32]uint32
	seen  map[uint32]uint8
}

func newLastAddr() *lastAddr {
	return &lastAddr{table: make(map[uint32]uint32), seen: make(map[uint32]uint8)}
}

func (p *lastAddr) Lookup(pc uint32) repro.AddrPrediction {
	addr, ok := p.table[pc]
	if !ok {
		return repro.AddrPrediction{}
	}
	return repro.AddrPrediction{Addr: addr, Valid: true, Confident: p.seen[pc] >= 2}
}

func (p *lastAddr) Update(pc, addr uint32) bool {
	prev, ok := p.table[pc]
	correct := ok && prev == addr
	if correct {
		if p.seen[pc] < 3 {
			p.seen[pc]++
		}
	} else if p.seen[pc] >= 2 {
		p.seen[pc] -= 2
	} else {
		p.seen[pc] = 0
	}
	p.table[pc] = addr
	return correct
}

// markov predicts the next address from (pc, last address) pairs — it can
// learn stable pointer-chain hops that defeat stride arithmetic.
type markov struct {
	next map[uint64]uint32 // (pc, lastAddr) -> next addr
	last map[uint32]uint32
	conf map[uint64]uint8
}

func newMarkov() *markov {
	return &markov{
		next: make(map[uint64]uint32),
		last: make(map[uint32]uint32),
		conf: make(map[uint64]uint8),
	}
}

func (p *markov) key(pc uint32) uint64 { return uint64(pc)<<32 | uint64(p.last[pc]) }

func (p *markov) Lookup(pc uint32) repro.AddrPrediction {
	k := p.key(pc)
	addr, ok := p.next[k]
	if !ok {
		return repro.AddrPrediction{}
	}
	return repro.AddrPrediction{Addr: addr, Valid: true, Confident: p.conf[k] >= 2}
}

func (p *markov) Update(pc, addr uint32) bool {
	k := p.key(pc)
	prev, ok := p.next[k]
	correct := ok && prev == addr
	if correct {
		if p.conf[k] < 3 {
			p.conf[k]++
		}
	} else {
		if p.conf[k] >= 2 {
			p.conf[k] -= 2
		} else {
			p.conf[k] = 0
		}
		p.next[k] = addr
	}
	p.last[pc] = addr
	return correct
}

func main() {
	w, err := repro.WorkloadByName("li")
	if err != nil {
		log.Fatal(err)
	}
	tr, _, err := w.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark li (%d instructions), config B, width 8\n\n", tr.Len())
	fmt.Printf("%-22s %8s | %7s %9s %9s %7s\n",
		"address predictor", "IPC", "ready", "correct", "incorrect", "nopred")

	predictors := []struct {
		name string
		mk   func() repro.AddrPredictor
	}{
		{"two-delta stride", func() repro.AddrPredictor { return repro.NewStridePredictor() }},
		{"last-address", func() repro.AddrPredictor { return newLastAddr() }},
		{"markov (pc,lastaddr)", func() repro.AddrPredictor { return newMarkov() }},
	}
	for _, p := range predictors {
		res := repro.Run(tr.Reader(), repro.ConfigB, repro.Params{Width: 8, Addr: p.mk()})
		fmt.Printf("%-22s %8.3f | %6.1f%% %8.1f%% %8.1f%% %6.1f%%\n",
			p.name, res.IPC(),
			res.LoadPercent(res.LoadReady),
			res.LoadPercent(res.LoadPredCorrect),
			res.LoadPercent(res.LoadPredIncorrect),
			res.LoadPercent(res.LoadNotPred))
	}
	fmt.Println("\nThe stride table cannot see pointer-chain hops; a context table")
	fmt.Println("keyed by the previous address captures stable chains, the research")
	fmt.Println("direction the paper's conclusion points to.")
}
