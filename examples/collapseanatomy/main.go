// Collapseanatomy dissects dependence collapsing on the paper's own
// Section 3 code fragments, written directly in SV8 assembly. It simulates
// each fragment with collapsing off (config A) and on (config C) at width 8
// with perfect branch prediction out of the picture, and shows the cycle
// counts, the collapse categories, and the collapsed signatures — the
// anatomy behind Tables 5-6.
package main

import (
	"fmt"
	"log"

	"repro"
)

type fragment struct {
	name string
	note string
	src  string
}

var fragments = []fragment{
	{
		name: "pair+triple chain (Section 3)",
		note: "Rb = Rd << Rh; Rg = Rb + Re; Ra = Rf - Rg: the 3-1 pair and 4-1 triple example",
		src: `
		main:
			ldi r11, 5        ; Rd
			ldi r12, 2        ; Rh
			ldi r14, 100      ; Re
			ldi r16, 999      ; Rf
			sll r10, r11, r12 ; 1. Rb = Rd << Rh
			add r13, r10, r14 ; 2. Rg = Rb + Re
			sub r15, r16, r13 ; 3. Ra = Rf - Rg
			out r15
			halt
		`,
	},
	{
		name: "double use pair",
		note: "Rb = Ra + Rd; Rc = Rb + Rb needs (Ra+Rd)+(Ra+Rd): a 4-1 expression from a pair",
		src: `
		main:
			ldi r11, 7
			ldi r12, 3
			add r10, r11, r12
			add r13, r10, r10
			out r13
			halt
		`,
	},
	{
		name: "zero-operand detection (Section 3)",
		note: "or/sub/shift feeding a zero-offset load: raw 5-1, collapsible only via 0-op detection",
		src: `
		.data
		src:  .word 0x2000, 2   ; Rg and Ra arrive late, via loads
		      .space 79
		mem:  .word 24           ; lives at (0x2000|0x288) >> (2-1) = 0x1144
		.text
		main:
			ldi r20, src
			ld  r11, [r20+0]     ; Rg
			ld  r15, [r20+4]     ; Ra
			or  r10, r11, 0x288  ; 1. Rf = Rg or 0x288
			sub r13, r15, 1      ; 2. Rh = Ra - 1
			srl r14, r10, r13    ; 3. Rd = Rf >> Rh
			ld  r15, [r14+0]     ; 4. Ra = [Rd + 0]
			out r15
			halt
		`,
	},
	{
		name: "compare-and-branch",
		note: "cc-generation collapses into the conditional branch: the arXX-brc rows heading Table 5",
		src: `
		main:
			ldi r8, 0
			ldi r9, 0
		loop:
			add r9, r9, r8
			add r8, r8, 1
			cmp r8, 64
			blt loop
			out r9
			halt
		`,
	},
}

func main() {
	for _, f := range fragments {
		prog, err := repro.Assemble(f.src)
		if err != nil {
			log.Fatalf("%s: %v", f.name, err)
		}
		tr, output, err := repro.TraceProgram(prog)
		if err != nil {
			log.Fatalf("%s: %v", f.name, err)
		}
		cfgA := repro.ConfigA
		cfgC := repro.ConfigC
		cfgA.PerfectBranches = true
		cfgC.PerfectBranches = true
		base := repro.Run(tr.Reader(), cfgA, repro.Params{Width: 8})
		coll := repro.Run(tr.Reader(), cfgC, repro.Params{Width: 8})

		fmt.Printf("== %s ==\n", f.name)
		fmt.Printf("   %s\n", f.note)
		fmt.Printf("   output %v, %d instructions\n", output, tr.Len())
		fmt.Printf("   cycles: %d without collapsing, %d with (speedup %.2f)\n",
			base.Cycles, coll.Cycles, float64(base.Cycles)/float64(coll.Cycles))
		fmt.Printf("   groups: %d  (3-1 %d, 4-1 %d, 0-op %d)  instructions collapsed %d/%d\n",
			coll.TotalGroups(),
			coll.Groups[repro.Collapse31], coll.Groups[repro.Collapse41],
			coll.Groups[repro.Collapse0Op], coll.CollapsedInstrs, coll.Instructions)
		for _, sc := range repro.TopSigs(coll.PairSigs, 4) {
			fmt.Printf("   pair   %-16s x%d\n", sc.Sig, sc.Count)
		}
		for _, sc := range repro.TopSigs(coll.TripleSigs, 4) {
			fmt.Printf("   triple %-16s x%d\n", sc.Sig, sc.Count)
		}
		fmt.Println()
	}
}
