// Criticalpath reproduces the paper's framing argument (Section 1): a
// program's minimum execution time is the length of the critical path
// through its dynamic dependence graph, and the two studied techniques
// work by *restructuring* that graph. For each benchmark this example
// computes the dataflow limit, shows how much of it control flow eats,
// which instruction classes sit on the critical path (the ones collapsing
// targets), and how close the simulated machines get at width 32 — with
// perfect memory and with a realistic L1 cache.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/isa"
)

func main() {
	fmt.Println("Dependence-graph limits vs. achieved IPC (width 32)")
	fmt.Println()
	fmt.Printf("%-9s %9s | %8s %8s | %7s %7s %7s | %s\n",
		"bench", "instrs", "dataflow", "w/brmiss", "IPC(A)", "IPC(D)", "D+L1$", "critical-path classes")

	for _, w := range repro.Workloads() {
		tr, _, err := w.TraceCached(0)
		if err != nil {
			log.Fatal(err)
		}
		pure := repro.AnalyzeLimits(tr.Reader(), repro.LimitOptions{})
		ctl := repro.AnalyzeLimits(tr.Reader(), repro.LimitOptions{RealBranches: true})

		base := repro.Run(tr.Reader(), repro.ConfigA, repro.Params{Width: 32})
		full := repro.Run(tr.Reader(), repro.ConfigD, repro.Params{Width: 32})
		cached := repro.Run(tr.Reader(), repro.ConfigD, repro.Params{
			Width: 32, Cache: repro.NewCache(repro.DefaultL1Cache()),
		})

		// Which classes dominate the pure dataflow critical path?
		mix := ""
		for _, c := range []isa.Class{isa.ClassAr, isa.ClassLd, isa.ClassLg, isa.ClassSh, isa.ClassMv, isa.ClassBrc} {
			if pct := pure.CritClassPercent(c); pct >= 10 {
				mix += fmt.Sprintf("%v %.0f%% ", c, pct)
			}
		}

		fmt.Printf("%-9s %9d | %8.1f %8.1f | %7.2f %7.2f %7.2f | %s\n",
			w.Name, pure.Instructions, pure.IPC(), ctl.IPC(),
			base.IPC(), full.IPC(), cached.IPC(), mix)
	}

	fmt.Println()
	fmt.Println("dataflow  = IPC bound from true data dependences alone (infinite machine)")
	fmt.Println("w/brmiss  = the same bound after realistic branch prediction is imposed")
	fmt.Println("D+L1$     = config D with a 16KiB 2-way L1 cache, 20-cycle misses")
	fmt.Println()
	fmt.Println("The classes on the critical path are the ones the paper's mechanisms")
	fmt.Println("attack: arithmetic/logic/shift chains collapse, load chains speculate.")
	fmt.Println("Note that IPC(D) can exceed the w/brmiss bound: collapsing does not")
	fmt.Println("just approach the dependence graph's limit, it restructures the graph —")
	fmt.Println("the paper's Section 1 point that the critical path itself can shrink")
	fmt.Println("\"possibly below the theoretical minimum\".")
}
