// Quickstart: compile a MiniC program with the repository's own toolchain,
// trace it on the emulator, and simulate it under all five machine
// configurations of the MICRO-96 study, printing IPC and speedup like the
// paper's Figures 2-3.
package main

import (
	"fmt"
	"log"

	"repro"
)

// A small matrix-sum kernel: enough dependent address arithmetic for
// collapsing to bite, enough strided loads for speculation to bite.
const program = `
var m[256];

func main() {
	// Fill a 16x16 matrix with a gradient.
	for (var y = 0; y < 16; y = y + 1) {
		for (var x = 0; x < 16; x = x + 1) {
			m[y * 16 + x] = x * y + x;
		}
	}
	// Sum the diagonal bands.
	var total = 0;
	for (var d = 0; d < 16; d = d + 1) {
		for (var i = 0; i < 16 - d; i = i + 1) {
			total = total + m[i * 16 + i + d];
		}
	}
	out(total);
}
`

func main() {
	prog, err := repro.BuildMiniC(program)
	if err != nil {
		log.Fatal(err)
	}
	tr, output, err := repro.TraceProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %v\n", output)
	fmt.Printf("dynamic instructions: %d\n\n", tr.Len())

	const width = 8
	fmt.Printf("issue width %d, window %d:\n\n", width, 2*width)
	fmt.Printf("%-52s %8s %8s\n", "configuration", "IPC", "speedup")

	var baseIPC float64
	for _, cfg := range repro.Configs() {
		res := repro.Run(tr.Reader(), cfg, repro.Params{Width: width})
		if cfg.Name == "A" {
			baseIPC = res.IPC()
		}
		fmt.Printf("%-52s %8.3f %8.2f\n", describe(cfg), res.IPC(), res.IPC()/baseIPC)
		if cfg.Name == "D" {
			fmt.Printf("    %d/%d instructions collapsed (%.1f%%), %d loads speculated correctly\n",
				res.CollapsedInstrs, res.Instructions, res.CollapsedPercent(), res.LoadPredCorrect)
		}
	}
}

func describe(cfg repro.Config) string {
	switch cfg.Name {
	case "A":
		return "A: base superscalar"
	case "B":
		return "B: base + real load-speculation"
	case "C":
		return "C: base + d-collapsing"
	case "D":
		return "D: base + d-collapsing + real load-speculation"
	default:
		return "E: base + d-collapsing + ideal load-speculation"
	}
}
