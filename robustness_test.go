package repro

// End-to-end acceptance suite for the hardened pipeline (docs/robustness.md):
//
//   1. every byte-level corruption class injected into a real workload's
//      binary trace is detected — a classified, fault-naming error — and
//      never yields a silently different simulation result;
//   2. every record-stream fault either surfaces as an error or is
//      explicitly tolerated with a knowably different record count;
//   3. all six workloads pass config-D width-8 runs under scheduler
//      invariant sweeps with zero violations.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/trace"
	"repro/internal/workloads"
)

type memSeeker struct {
	b   []byte
	pos int
}

func (s *memSeeker) Write(p []byte) (int, error) {
	if need := s.pos + len(p); need > len(s.b) {
		s.b = append(s.b, make([]byte, need-len(s.b))...)
	}
	copy(s.b[s.pos:], p)
	s.pos += len(p)
	return len(p), nil
}

func (s *memSeeker) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		s.pos = int(off)
	case io.SeekCurrent:
		s.pos += int(off)
	case io.SeekEnd:
		s.pos = len(s.b) + int(off)
	}
	return int64(s.pos), nil
}

// workloadImage encodes one real workload's dynamic trace as a counted
// binary image.
func workloadImage(t *testing.T, name string, scale int) []byte {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	buf, _, err := w.TraceCached(scale)
	if err != nil {
		t.Fatal(err)
	}
	var ms memSeeker
	tw, err := trace.NewWriter(&ms)
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Record
	src := buf.Reader()
	for src.Next(&rec) {
		if err := tw.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return ms.b
}

func simulateImage(img []byte) (*core.Result, error) {
	r, err := trace.NewReader(bytes.NewReader(img))
	if err != nil {
		return nil, err
	}
	return core.RunChecked(context.Background(), r, core.ConfigD, core.Params{Width: 8})
}

// TestCorruptionNeverSilent is the headline acceptance test: for every
// corruption class and several seeds, simulating the corrupted image either
// fails with an error naming the fault class's sentinel, or (never) matches
// the baseline silently. There is no third outcome.
func TestCorruptionNeverSilent(t *testing.T) {
	img := workloadImage(t, "eqntott", 30)
	baseline, err := simulateImage(img)
	if err != nil {
		t.Fatalf("baseline simulation failed: %v", err)
	}
	if baseline.Instructions == 0 {
		t.Fatal("baseline trace empty")
	}

	for _, f := range faultinject.ByteFaults {
		for seed := int64(0); seed < 5; seed++ {
			bad := faultinject.Corrupt(img, f, seed)
			res, err := simulateImage(bad)
			if err == nil {
				t.Errorf("%v seed %d: corrupted trace simulated cleanly (%d instr vs baseline %d)",
					f, seed, res.Instructions, baseline.Instructions)
				continue
			}
			if !trace.IsCorrupt(err) {
				t.Errorf("%v seed %d: error not classified as corrupt input: %v", f, seed, err)
			}
		}
	}
}

// TestStreamFaultContract pins the Source-level fault taxonomy: detectable
// faults error out; the one explicitly tolerated fault (silent truncation,
// which no reader can see) still yields an honest record count.
func TestStreamFaultContract(t *testing.T) {
	w, err := workloads.ByName("eqntott")
	if err != nil {
		t.Fatal(err)
	}
	buf, _, err := w.TraceCached(30)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(buf.Len())
	at := n / 2

	t.Run("delayed-err-detected", func(t *testing.T) {
		src := faultinject.New(buf.Reader(), faultinject.Plan{Kind: faultinject.FaultDelayedErr, At: at})
		_, err := core.RunChecked(context.Background(), src, core.ConfigD, core.Params{Width: 8})
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("delayed stream error not propagated: %v", err)
		}
	})

	t.Run("silent-truncation-tolerated-honestly", func(t *testing.T) {
		// A source that silently ends early is indistinguishable from a
		// short trace by construction; the contract is that the result's
		// instruction count reflects exactly what was delivered.
		src := faultinject.New(buf.Reader(), faultinject.Plan{Kind: faultinject.FaultTruncate, At: at})
		res, err := core.RunChecked(context.Background(), src, core.ConfigD, core.Params{Width: 8})
		if err != nil {
			t.Fatalf("silent truncation should not error at source level: %v", err)
		}
		if res.Instructions != at {
			t.Fatalf("scheduled %d instructions, want exactly %d", res.Instructions, at)
		}
	})

	t.Run("bit-flips-change-or-fail", func(t *testing.T) {
		baseline, err := core.RunChecked(context.Background(), buf.Reader(), core.ConfigD, core.Params{Width: 8})
		if err != nil {
			t.Fatal(err)
		}
		// In-memory record flips bypass the binary checksum, so they are
		// either caught by record validation (register/opcode ranges) or
		// produce a legal-but-different trace; both are acceptable, and the
		// injector must report the strike either way.
		for seed := int64(0); seed < 10; seed++ {
			src := faultinject.New(buf.Reader(), faultinject.Plan{
				Kind: faultinject.FaultBitFlip, At: at, Seed: seed,
			})
			res, err := core.RunChecked(context.Background(), src, core.ConfigD, core.Params{Width: 8})
			if err != nil {
				if !trace.IsCorrupt(err) {
					t.Errorf("seed %d: flip error not classified: %v", seed, err)
				}
				continue
			}
			if src.Faults() != 1 {
				t.Errorf("seed %d: %d faults injected, want 1", seed, src.Faults())
			}
			if res.Instructions != baseline.Instructions {
				t.Errorf("seed %d: instruction count changed (%d vs %d)",
					seed, res.Instructions, baseline.Instructions)
			}
		}
	})
}

// TestSelfCheckSweepAllWorkloads is acceptance item: -selfcheck equivalent
// across all six workloads, config D, width 8, zero violations.
func TestSelfCheckSweepAllWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		buf, _, err := w.TraceCached(30)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		res, err := core.RunChecked(context.Background(), buf.Reader(), core.ConfigD,
			core.Params{Width: 8, SelfCheck: true, SelfCheckEvery: 1024})
		if err != nil {
			t.Fatalf("%s: invariant violation: %v", w.Name, err)
		}
		if res.SelfChecks == 0 {
			t.Fatalf("%s: no sweeps ran", w.Name)
		}
	}
}
