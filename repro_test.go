package repro

import (
	"strings"
	"testing"
)

// End-to-end tests of the public API: MiniC source through the compiler,
// assembler, emulator and simulator.

const testKernel = `
var table[64];

func fill(n) {
	for (var i = 0; i < n; i = i + 1) {
		table[i] = i * 3 + 1;
	}
}

func main() {
	fill(64);
	var sum = 0;
	for (var i = 0; i < 64; i = i + 1) {
		sum = sum + table[i];
	}
	out(sum);
}
`

func buildTestTrace(t *testing.T) *TraceBuffer {
	t.Helper()
	prog, err := BuildMiniC(testKernel)
	if err != nil {
		t.Fatal(err)
	}
	tr, out, err := TraceProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	want := int32(64*1 + 3*(64*63)/2) // sum of 3i+1, i<64
	if len(out) != 1 || out[0] != want {
		t.Fatalf("kernel output = %v, want [%d]", out, want)
	}
	return tr
}

func TestEndToEndPipeline(t *testing.T) {
	tr := buildTestTrace(t)
	if tr.Len() < 500 {
		t.Fatalf("trace too short: %d", tr.Len())
	}
	var last float64
	for _, cfg := range Configs() {
		res := Run(tr.Reader(), cfg, Params{Width: 8})
		if res.Instructions != int64(tr.Len()) {
			t.Errorf("%s: scheduled %d of %d instructions", cfg.Name, res.Instructions, tr.Len())
		}
		if res.IPC() <= 0 || res.IPC() > 8 {
			t.Errorf("%s: IPC %v out of range", cfg.Name, res.IPC())
		}
		if cfg.Name == "A" {
			last = res.IPC()
		}
	}
	// Collapsing must beat the base on this dependent kernel.
	resC := Run(tr.Reader(), ConfigC, Params{Width: 8})
	if resC.IPC() <= last {
		t.Errorf("collapsing IPC %v did not beat base %v", resC.IPC(), last)
	}
}

func TestCompileErrorSurfaces(t *testing.T) {
	_, err := BuildMiniC("func main() { undefined(); }")
	if err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Errorf("err = %v, want undefined function", err)
	}
}

func TestAssembleAPI(t *testing.T) {
	prog, err := Assemble("main:\n\tldi r1, 5\n\tout r1\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 5 {
		t.Errorf("out = %v, want [5]", out)
	}
}

func TestWorkloadRegistry(t *testing.T) {
	if len(Workloads()) != 6 {
		t.Errorf("workloads = %d, want 6", len(Workloads()))
	}
	if len(PointerChasingWorkloads()) != 2 || len(NonPointerChasingWorkloads()) != 4 {
		t.Error("pointer-chasing split wrong")
	}
	if _, err := WorkloadByName("li"); err != nil {
		t.Error(err)
	}
}

func TestConfigFIsExtension(t *testing.T) {
	if !ConfigF.LoadValuePred || !ConfigF.Collapse || !ConfigF.LoadSpec {
		t.Errorf("ConfigF = %+v", ConfigF)
	}
	// The paper's set stays five-strong; F is the extension.
	if len(Configs()) != 5 {
		t.Errorf("Configs() = %d entries, want the paper's 5", len(Configs()))
	}
}

func TestCustomPredictorPluggable(t *testing.T) {
	tr := buildTestTrace(t)
	oracle := oracleAddr{}
	res := Run(tr.Reader(), ConfigB, Params{Width: 8, Addr: oracle})
	if res.LoadPredIncorrect != 0 {
		t.Errorf("oracle predictor mispredicted %d loads", res.LoadPredIncorrect)
	}
	base := Run(tr.Reader(), ConfigB, Params{Width: 8})
	if res.IPC() < base.IPC() {
		t.Errorf("oracle predictor IPC %v below stride %v", res.IPC(), base.IPC())
	}
}

// oracleAddr is deliberately trivial: it never predicts, so every not-ready
// load falls into the not-predicted category and nothing can mispredict.
type oracleAddr struct{}

func (oracleAddr) Lookup(uint32) AddrPrediction { return AddrPrediction{} }
func (oracleAddr) Update(uint32, uint32) bool   { return false }

func TestStridePredictorPublicAPI(t *testing.T) {
	p := NewStridePredictor()
	for i := uint32(0); i < 6; i++ {
		p.Update(7, 0x100+8*i)
	}
	pred := p.Lookup(7)
	if !pred.Confident || pred.Addr != 0x100+8*6 {
		t.Errorf("prediction = %+v", pred)
	}
}

func TestValuePredictorPublicAPI(t *testing.T) {
	p := NewLastValuePredictor()
	for i := 0; i < 4; i++ {
		p.Update(3, 99)
	}
	if pred := p.Lookup(3); !pred.Confident || pred.Value != 99 {
		t.Errorf("prediction = %+v", pred)
	}
}

func TestMcFarlingPublicAPI(t *testing.T) {
	p := NewMcFarlingPredictor()
	for i := 0; i < 100; i++ {
		p.Update(5, true)
	}
	if !p.Predict(5) {
		t.Error("always-taken branch predicted not-taken")
	}
}
